#include "cost_model.hh"

#include <algorithm>

#include "kernels/attention.hh"
#include "util/logging.hh"

namespace mmgen::kernels {

using graph::Op;
using graph::OpKind;

namespace {

double
d(std::int64_t v)
{
    return static_cast<double>(v);
}

} // namespace

double
opWorkingSetBytes(const graph::Op& op, graph::AttentionBackend backend)
{
    const double db = d(dtypeBytes(op.dtype));
    switch (op.kind) {
      case OpKind::Conv2D:
      case OpKind::Conv3D: {
        const auto& a = op.as<graph::ConvAttrs>();
        const double in =
            d(a.batch * a.inChannels * a.inD * a.inH * a.inW);
        const double w = d(a.kernelD * a.kernelH * a.kernelW *
                           (a.inChannels / a.groups) * a.outChannels);
        const double out =
            d(a.batch * a.outChannels * a.outD() * a.outH() * a.outW());
        return (in + w + out) * db;
      }
      case OpKind::Linear: {
        const auto& a = op.as<graph::LinearAttrs>();
        return (d(a.rows * a.inFeatures) +
                d(a.inFeatures * a.outFeatures) +
                d(a.rows * a.outFeatures)) *
               db;
      }
      case OpKind::Matmul: {
        const auto& a = op.as<graph::MatmulAttrs>();
        return d(a.batch) * (d(a.m * a.k) + d(a.k * a.n) + d(a.m * a.n)) *
               db;
      }
      case OpKind::Attention: {
        const auto& a = op.as<graph::AttentionAttrs>();
        double ws = qkvoBytes(a, dtypeBytes(op.dtype));
        if (backend == graph::AttentionBackend::Baseline)
            ws += similarityMatrixBytes(a, dtypeBytes(op.dtype));
        return ws;
      }
      case OpKind::GroupNorm:
      case OpKind::LayerNorm: {
        const auto& a = op.as<graph::NormAttrs>();
        return 2.0 * d(a.numel) * db;
      }
      case OpKind::Softmax: {
        const auto& a = op.as<graph::SoftmaxAttrs>();
        return 2.0 * d(a.rows * a.cols) * db;
      }
      case OpKind::Elementwise: {
        const auto& a = op.as<graph::ElemAttrs>();
        return (d(a.arity) + 1.0) * d(a.numel) * db;
      }
      case OpKind::Embedding: {
        const auto& a = op.as<graph::EmbeddingAttrs>();
        return (d(a.vocab * a.dim) + d(a.tokens * a.dim)) * db;
      }
      case OpKind::Upsample:
      case OpKind::Downsample: {
        const auto& a = op.as<graph::ResampleAttrs>();
        return (d(a.numelIn) + d(a.numelOut)) * db;
      }
      case OpKind::Copy: {
        const auto& a = op.as<graph::CopyAttrs>();
        return 2.0 * d(a.bytes);
      }
    }
    MMGEN_ASSERT(false, "unknown op kind");
}

OpMemoryDemand
CostModel::memoryDemand(const Op& op) const
{
    const double db = d(dtypeBytes(op.dtype));
    OpMemoryDemand dem;
    dem.weightResidentBytes =
        static_cast<double>(graph::opParamCount(op)) * db;
    dem.weightReadBytes = dem.weightResidentBytes;
    switch (op.kind) {
      case OpKind::Conv2D:
      case OpKind::Conv3D: {
        const auto& a = op.as<graph::ConvAttrs>();
        dem.inputBytes =
            d(a.batch * a.inChannels * a.inD * a.inH * a.inW) * db;
        dem.outputBytes =
            d(a.batch * a.outChannels * a.outD() * a.outH() *
              a.outW()) *
            db;
        return dem;
      }
      case OpKind::Linear: {
        const auto& a = op.as<graph::LinearAttrs>();
        dem.inputBytes = d(a.rows * a.inFeatures) * db;
        dem.outputBytes = d(a.rows * a.outFeatures) * db;
        return dem;
      }
      case OpKind::Matmul: {
        const auto& a = op.as<graph::MatmulAttrs>();
        dem.inputBytes =
            d(a.batch) * (d(a.m * a.k) + d(a.k * a.n)) * db;
        dem.outputBytes = d(a.batch) * d(a.m * a.n) * db;
        return dem;
      }
      case OpKind::Attention: {
        const auto& a = op.as<graph::AttentionAttrs>();
        const double q =
            d(a.batch) * d(a.heads) * d(a.seqQ) * d(a.headDim) * db;
        const double kv = 2.0 * d(a.batch) * d(a.heads) * d(a.seqKv) *
                          d(a.headDim) * db;
        dem.inputBytes = q + kv;
        dem.outputBytes = q; // O has Q's shape
        dem.workspaceBytes = attentionWorkspaceBytes(
            gpu_, params_, a, op.dtype, backend_);
        return dem;
      }
      case OpKind::GroupNorm:
      case OpKind::LayerNorm: {
        const auto& a = op.as<graph::NormAttrs>();
        dem.inputBytes = d(a.numel) * db;
        dem.outputBytes = d(a.numel) * db;
        // The cost model folds the tiny affine read into its streamed
        // 3 * numel traffic; charging it again here would claim more
        // traffic than the kernels move for skinny tensors.
        dem.weightReadBytes = 0.0;
        return dem;
      }
      case OpKind::Softmax: {
        const auto& a = op.as<graph::SoftmaxAttrs>();
        dem.inputBytes = d(a.rows * a.cols) * db;
        dem.outputBytes = d(a.rows * a.cols) * db;
        return dem;
      }
      case OpKind::Elementwise: {
        const auto& a = op.as<graph::ElemAttrs>();
        dem.inputBytes = d(a.arity) * d(a.numel) * db;
        dem.outputBytes = d(a.numel) * db;
        return dem;
      }
      case OpKind::Embedding: {
        const auto& a = op.as<graph::EmbeddingAttrs>();
        // Token indices are negligible; the gather reads table rows
        // (parameter traffic) and writes the embedded activations.
        dem.inputBytes = 0.0;
        dem.outputBytes = d(a.tokens * a.dim) * db;
        dem.weightReadBytes = d(a.tokens * a.dim) * db;
        return dem;
      }
      case OpKind::Upsample:
      case OpKind::Downsample: {
        const auto& a = op.as<graph::ResampleAttrs>();
        dem.inputBytes = d(a.numelIn) * db;
        dem.outputBytes = d(a.numelOut) * db;
        return dem;
      }
      case OpKind::Copy: {
        const auto& a = op.as<graph::CopyAttrs>();
        dem.inputBytes = d(a.bytes);
        dem.outputBytes = d(a.bytes);
        return dem;
      }
    }
    MMGEN_ASSERT(false, "unknown op kind");
}

CostModel::CostModel(const hw::GpuSpec& gpu,
                     graph::AttentionBackend backend,
                     const EfficiencyParams& params)
    : gpu_(gpu), backend_(backend), params_(params)
{}

OpCost
CostModel::cost(const Op& op) const
{
    switch (op.kind) {
      case OpKind::Conv2D:
      case OpKind::Conv3D:
        return costConv(op);
      case OpKind::Linear:
        return costLinear(op);
      case OpKind::Matmul:
        return costMatmul(op);
      case OpKind::Attention:
        return lowerAttention(gpu_, params_,
                              op.as<graph::AttentionAttrs>(), op.dtype,
                              backend_);
      case OpKind::GroupNorm:
        return costNorm(op, true);
      case OpKind::LayerNorm:
        return costNorm(op, false);
      case OpKind::Softmax:
        return costSoftmax(op);
      case OpKind::Elementwise:
        return costElementwise(op);
      case OpKind::Embedding:
        return costEmbedding(op);
      case OpKind::Upsample:
        return costResample(op, true);
      case OpKind::Downsample:
        return costResample(op, false);
      case OpKind::Copy:
        return costCopy(op);
    }
    MMGEN_ASSERT(false, "unknown op kind");
}

OpTime
CostModel::time(const Op& op) const
{
    return time(cost(op), op.dtype, op.repeat);
}

OpTime
CostModel::time(const OpCost& cost, DType dtype, std::int64_t repeat) const
{
    OpTime total;
    for (const auto& part : cost.parts) {
        hw::TimeEstimateInputs in;
        in.flops = part.flops;
        in.hbmBytes = part.hbmBytes;
        in.computeEfficiency = part.computeEff;
        in.memoryEfficiency = part.memEff;
        in.launches = part.launches;
        in.dtype = dtype;
        const hw::TimeEstimate est = hw::estimateTime(gpu_, in);
        total.seconds += est.seconds;
        total.computeSeconds += est.computeSeconds;
        total.memorySeconds += est.memorySeconds;
        total.overheadSeconds += est.overheadSeconds;
    }
    const double r = d(repeat);
    total.seconds *= r;
    total.computeSeconds *= r;
    total.memorySeconds *= r;
    total.overheadSeconds *= r;
    return total;
}

std::vector<std::pair<KernelClass, double>>
CostModel::timeByKernelClass(const OpCost& cost, DType dtype,
                             std::int64_t repeat) const
{
    std::vector<std::pair<KernelClass, double>> out;
    out.reserve(cost.parts.size());
    for (const auto& part : cost.parts) {
        hw::TimeEstimateInputs in;
        in.flops = part.flops;
        in.hbmBytes = part.hbmBytes;
        in.computeEfficiency = part.computeEff;
        in.memoryEfficiency = part.memEff;
        in.launches = part.launches;
        in.dtype = dtype;
        out.emplace_back(part.klass,
                         hw::estimateTime(gpu_, in).seconds *
                             static_cast<double>(repeat));
    }
    return out;
}

OpCost
CostModel::costConv(const Op& op) const
{
    const auto& a = op.as<graph::ConvAttrs>();
    const std::size_t db = dtypeBytes(op.dtype);
    // Implicit GEMM view: M = batch * output positions, N = outC,
    // K = (inC / groups) * kernel volume.
    const std::int64_t m = a.batch * a.outD() * a.outH() * a.outW();
    const std::int64_t n = a.outChannels;
    const std::int64_t k =
        (a.inChannels / a.groups) * a.kernelD * a.kernelH * a.kernelW;

    SubKernelCost kc;
    kc.klass = KernelClass::Conv;
    kc.label = op.kind == OpKind::Conv3D ? "conv3d" : "conv2d";
    kc.flops = 2.0 * d(m) * d(n) * d(k) * d(a.groups);
    const double in_bytes =
        d(a.batch * a.inChannels * a.inD * a.inH * a.inW) * d(db);
    const double w_bytes =
        d(a.kernelD * a.kernelH * a.kernelW *
          (a.inChannels / a.groups) * a.outChannels) *
        d(db);
    const double out_bytes = d(m * n) * d(db);
    kc.hbmBytes = in_bytes + w_bytes + out_bytes;
    kc.weightBytes = w_bytes;
    if (a.hasBias) {
        kc.hbmBytes += d(a.outChannels) * d(db);
        kc.weightBytes += d(a.outChannels) * d(db);
    }
    kc.launches = 1;
    kc.computeEff = convComputeEff(gpu_, params_, m, n, k);
    kc.memEff = streamMemEff(params_,
                             static_cast<std::int64_t>(kc.hbmBytes));
    OpCost cost;
    cost.parts.push_back(std::move(kc));
    return cost;
}

OpCost
CostModel::costLinear(const Op& op) const
{
    const auto& a = op.as<graph::LinearAttrs>();
    const std::size_t db = dtypeBytes(op.dtype);
    SubKernelCost kc;
    kc.klass = KernelClass::Gemm;
    kc.label = "linear";
    kc.flops = 2.0 * d(a.rows) * d(a.inFeatures) * d(a.outFeatures);
    kc.hbmBytes = (d(a.rows * a.inFeatures) +
                   d(a.inFeatures * a.outFeatures) +
                   d(a.rows * a.outFeatures)) *
                  d(db);
    kc.weightBytes = d(a.inFeatures * a.outFeatures) * d(db);
    if (a.hasBias) {
        kc.hbmBytes += d(a.outFeatures) * d(db);
        kc.weightBytes += d(a.outFeatures) * d(db);
    }
    kc.launches = 1;
    kc.computeEff =
        gemmComputeEff(gpu_, params_, 1, a.rows, a.outFeatures,
                       a.inFeatures);
    kc.memEff = gemmMemEff(params_, 1, a.rows, a.outFeatures,
                           a.inFeatures, db);
    OpCost cost;
    cost.parts.push_back(std::move(kc));
    return cost;
}

OpCost
CostModel::costMatmul(const Op& op) const
{
    const auto& a = op.as<graph::MatmulAttrs>();
    const std::size_t db = dtypeBytes(op.dtype);
    SubKernelCost kc;
    kc.klass = KernelClass::Gemm;
    kc.label = "matmul";
    kc.flops = 2.0 * d(a.batch) * d(a.m) * d(a.n) * d(a.k);
    kc.hbmBytes =
        d(a.batch) * (d(a.m * a.k) + d(a.k * a.n) + d(a.m * a.n)) * d(db);
    kc.launches = 1;
    kc.computeEff = gemmComputeEff(gpu_, params_, a.batch, a.m, a.n, a.k);
    kc.memEff = gemmMemEff(params_, a.batch, a.m, a.n, a.k, db);
    OpCost cost;
    cost.parts.push_back(std::move(kc));
    return cost;
}

OpCost
CostModel::costNorm(const Op& op, bool group) const
{
    const auto& a = op.as<graph::NormAttrs>();
    const std::size_t db = dtypeBytes(op.dtype);
    SubKernelCost kc;
    kc.klass = KernelClass::Norm;
    kc.label = group ? "group_norm" : "layer_norm";
    // Two passes: statistics, then normalize + affine.
    kc.flops = 8.0 * d(a.numel);
    kc.hbmBytes = 3.0 * d(a.numel) * d(db);
    kc.launches = 2;
    kc.computeEff = 1.0;
    kc.memEff = streamMemEff(params_,
                             static_cast<std::int64_t>(kc.hbmBytes));
    OpCost cost;
    cost.parts.push_back(std::move(kc));
    return cost;
}

OpCost
CostModel::costSoftmax(const Op& op) const
{
    const auto& a = op.as<graph::SoftmaxAttrs>();
    const std::size_t db = dtypeBytes(op.dtype);
    SubKernelCost kc;
    kc.klass = KernelClass::Softmax;
    kc.label = "softmax";
    kc.flops = 5.0 * d(a.rows) * d(a.cols);
    kc.hbmBytes = 2.0 * d(a.rows) * d(a.cols) * d(db);
    kc.launches = 1;
    kc.computeEff = 1.0;
    kc.memEff = streamMemEff(params_,
                             static_cast<std::int64_t>(kc.hbmBytes));
    OpCost cost;
    cost.parts.push_back(std::move(kc));
    return cost;
}

OpCost
CostModel::costElementwise(const Op& op) const
{
    const auto& a = op.as<graph::ElemAttrs>();
    const std::size_t db = dtypeBytes(op.dtype);
    SubKernelCost kc;
    kc.klass = KernelClass::Elementwise;
    kc.label = a.label;
    kc.flops = a.flopsPerElement * d(a.numel);
    kc.hbmBytes = (d(a.arity) + 1.0) * d(a.numel) * d(db);
    kc.launches = 1;
    kc.computeEff = 1.0;
    kc.memEff = streamMemEff(params_,
                             static_cast<std::int64_t>(kc.hbmBytes));
    OpCost cost;
    cost.parts.push_back(std::move(kc));
    return cost;
}

OpCost
CostModel::costEmbedding(const Op& op) const
{
    const auto& a = op.as<graph::EmbeddingAttrs>();
    const std::size_t db = dtypeBytes(op.dtype);
    SubKernelCost kc;
    kc.klass = KernelClass::Memory;
    kc.label = "embedding";
    kc.flops = 0.0;
    kc.hbmBytes = 2.0 * d(a.tokens) * d(a.dim) * d(db);
    // The gathered table rows are parameter reads.
    kc.weightBytes = d(a.tokens) * d(a.dim) * d(db);
    kc.launches = 1;
    kc.computeEff = 1.0;
    kc.memEff = streamMemEff(params_,
                             static_cast<std::int64_t>(kc.hbmBytes));
    OpCost cost;
    cost.parts.push_back(std::move(kc));
    return cost;
}

OpCost
CostModel::costResample(const Op& op, bool up) const
{
    const auto& a = op.as<graph::ResampleAttrs>();
    const std::size_t db = dtypeBytes(op.dtype);
    SubKernelCost kc;
    kc.klass = KernelClass::Memory;
    kc.label = up ? "upsample" : "downsample";
    kc.flops = d(std::max(a.numelIn, a.numelOut));
    kc.hbmBytes = (d(a.numelIn) + d(a.numelOut)) * d(db);
    kc.launches = 1;
    kc.computeEff = 1.0;
    kc.memEff = streamMemEff(params_,
                             static_cast<std::int64_t>(kc.hbmBytes));
    OpCost cost;
    cost.parts.push_back(std::move(kc));
    return cost;
}

OpCost
CostModel::costCopy(const Op& op) const
{
    const auto& a = op.as<graph::CopyAttrs>();
    SubKernelCost kc;
    kc.klass = KernelClass::Memory;
    kc.label = "copy";
    kc.flops = 0.0;
    kc.hbmBytes = 2.0 * d(a.bytes);
    kc.launches = 1;
    kc.computeEff = 1.0;
    kc.memEff = streamMemEff(params_,
                             static_cast<std::int64_t>(kc.hbmBytes));
    OpCost cost;
    cost.parts.push_back(std::move(kc));
    return cost;
}

} // namespace mmgen::kernels
