#include "kernel_cost.hh"

#include "util/logging.hh"

namespace mmgen::kernels {

std::string
kernelClassName(KernelClass k)
{
    switch (k) {
      case KernelClass::Gemm:
        return "gemm";
      case KernelClass::Conv:
        return "conv";
      case KernelClass::Softmax:
        return "softmax";
      case KernelClass::Elementwise:
        return "elementwise";
      case KernelClass::Norm:
        return "norm";
      case KernelClass::Memory:
        return "memory";
    }
    MMGEN_ASSERT(false, "unknown kernel class");
}

double
OpCost::totalFlops() const
{
    double f = 0.0;
    for (const auto& p : parts)
        f += p.flops;
    return f;
}

double
OpCost::totalBytes() const
{
    double b = 0.0;
    for (const auto& p : parts)
        b += p.hbmBytes;
    return b;
}

int
OpCost::totalLaunches() const
{
    int l = 0;
    for (const auto& p : parts)
        l += p.launches;
    return l;
}

double
OpCost::arithmeticIntensity() const
{
    const double b = totalBytes();
    return b > 0.0 ? totalFlops() / b : 0.0;
}

} // namespace mmgen::kernels
