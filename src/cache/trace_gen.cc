#include "trace_gen.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mmgen::cache {

namespace {

/**
 * Emits sector accesses with consecutive-duplicate elimination, so a
 * run of contiguous elements costs one access per sector.
 */
class SectorEmitter
{
  public:
    SectorEmitter(GpuCacheModel& model, int sm,
                  kernels::KernelClass klass)
        : model_(model), sm_(sm), klass_(klass),
          shift_(0)
    {
        int line = model.lineBytes();
        while ((line >>= 1) != 0)
            ++shift_;
    }

    void
    touch(std::uint64_t addr, bool is_write = false)
    {
        const std::uint64_t sector = addr >> shift_;
        if (have_ && sector == last_)
            return;
        have_ = true;
        last_ = sector;
        model_.access(sm_, addr, klass_, is_write);
    }

    /** Forget the last sector (between logically separate streams). */
    void flush() { have_ = false; }

  private:
    GpuCacheModel& model_;
    int sm_;
    kernels::KernelClass klass_;
    int shift_;
    bool have_ = false;
    std::uint64_t last_ = 0;
};

/** Block assignment of work items to SMs (persistent-CTA style). */
int
smFor(std::int64_t item, std::int64_t total_items, int num_sms)
{
    const std::int64_t per =
        (total_items + num_sms - 1) / static_cast<std::int64_t>(num_sms);
    const std::int64_t sm = item / per;
    return static_cast<int>(std::min<std::int64_t>(sm, num_sms - 1));
}

/** Emit all elements of rows [row_lo, row_hi) of matrix layout m. */
void
emitRows(SectorEmitter& em, const MatrixLayout& m, std::int64_t batch,
         std::int64_t row_lo, std::int64_t row_hi, std::int64_t elems,
         bool is_write = false)
{
    for (std::int64_t r = row_lo; r < row_hi; ++r) {
        for (std::int64_t e = 0; e < elems; ++e)
            em.touch(m.addr(batch, r, e), is_write);
        em.flush();
    }
}

} // namespace

std::int64_t
MatrixLayout::batchCount() const
{
    std::int64_t n = 1;
    for (const auto& [size, stride] : batchDims)
        n *= size;
    return n;
}

std::uint64_t
MatrixLayout::addr(std::int64_t b, std::int64_t r, std::int64_t e) const
{
    std::int64_t off = 0;
    std::int64_t rem = b;
    for (const auto& [size, stride] : batchDims) {
        off += (rem % size) * stride;
        rem /= size;
    }
    MMGEN_ASSERT(rem == 0, "batch index " << b << " out of range");
    off += r * rowStrideElems + e * elemStrideElems;
    return baseBytes + static_cast<std::uint64_t>(off) * elemBytes;
}

MatrixLayout
MatrixLayout::contiguous(std::uint64_t base_bytes, std::int64_t batch,
                         std::int64_t rows, std::int64_t elems,
                         std::size_t elem_bytes)
{
    MatrixLayout m;
    m.baseBytes = base_bytes;
    m.rowStrideElems = elems;
    m.elemStrideElems = 1;
    m.batchDims = {{batch, rows * elems}};
    m.elemBytes = elem_bytes;
    return m;
}

void
runGemmTrace(GpuCacheModel& model, const GemmTraceParams& p)
{
    MMGEN_CHECK(p.m > 0 && p.n > 0 && p.k > 0, "GEMM dims must be positive");
    const std::int64_t batches_avail = p.a.batchCount();
    MMGEN_CHECK(batches_avail == p.b.batchCount() &&
                    batches_avail == p.c.batchCount(),
                "A/B/C batch counts differ");
    const std::int64_t batches =
        p.maxBatches > 0 ? std::min(p.maxBatches, batches_avail)
                         : batches_avail;
    const std::int64_t m_tiles = (p.m + p.tileM - 1) / p.tileM;
    const std::int64_t total_ctas = batches * m_tiles;

    for (std::int64_t b = 0; b < batches; ++b) {
        for (std::int64_t mt = 0; mt < m_tiles; ++mt) {
            const std::int64_t cta = b * m_tiles + mt;
            const int sm = smFor(cta, total_ctas, model.numSms());
            SectorEmitter em(model, sm, p.klass);
            const std::int64_t row_lo = mt * p.tileM;
            const std::int64_t row_hi = std::min(p.m, row_lo + p.tileM);
            // A tile: read once per CTA.
            emitRows(em, p.a, b, row_lo, row_hi, p.k);
            // B: the whole (n x k) operand streams through every CTA.
            emitRows(em, p.b, b, 0, p.n, p.k);
            // C tile: written once.
            emitRows(em, p.c, b, row_lo, row_hi, p.n, true);
        }
    }
}

void
runSoftmaxTrace(GpuCacheModel& model, const SoftmaxTraceParams& p)
{
    MMGEN_CHECK(p.rows > 0 && p.cols > 0,
                "softmax dims must be positive");
    const std::int64_t batches = p.mat.batchCount();
    const std::int64_t total_rows_all = batches * p.rows;
    const std::int64_t limit =
        p.maxRows > 0 ? std::min(p.maxRows, total_rows_all)
                      : total_rows_all;
    const std::int64_t row_bytes =
        p.cols * static_cast<std::int64_t>(p.mat.elemBytes);
    const int read_passes = row_bytes > p.registerBytes ? 2 : 1;

    for (std::int64_t idx = 0; idx < limit; ++idx) {
        const std::int64_t b = idx / p.rows;
        const std::int64_t r = idx % p.rows;
        const int sm = smFor(idx, limit, model.numSms());
        SectorEmitter em(model, sm, p.klass);
        for (int pass = 0; pass < read_passes; ++pass) {
            emitRows(em, p.mat, b, r, r + 1, p.cols);
        }
        // Normalize + write back.
        emitRows(em, p.mat, b, r, r + 1, p.cols, true);
    }
}

void
runElementwiseTrace(GpuCacheModel& model, const ElementwiseTraceParams& p)
{
    MMGEN_CHECK(p.rows > 0 && p.cols > 0,
                "elementwise dims must be positive");
    const std::int64_t batches = p.mat.batchCount();
    const std::int64_t total_rows_all = batches * p.rows;
    const std::int64_t limit =
        p.maxRows > 0 ? std::min(p.maxRows, total_rows_all)
                      : total_rows_all;

    for (std::int64_t idx = 0; idx < limit; ++idx) {
        const std::int64_t b = idx / p.rows;
        const std::int64_t r = idx % p.rows;
        const int sm = smFor(idx, limit, model.numSms());
        SectorEmitter em(model, sm, p.klass);
        // Read, then write the same row.
        emitRows(em, p.mat, b, r, r + 1, p.cols);
        emitRows(em, p.mat, b, r, r + 1, p.cols, true);
    }
}

} // namespace mmgen::cache
