/**
 * @file
 * Cache-behaviour study of one attention call (paper Fig. 12).
 *
 * Replays the attention kernel sequence (QK^T GEMM, scale, softmax,
 * AV GEMM) as address traces over the layouts implied by the attention
 * attributes, and reports L1/L2 hit rates per kernel class. Spatial
 * attention enjoys query-tile reuse of K/V and multi-pass softmax rows;
 * temporal attention's tiny, strided matrices exhibit neither, which
 * is the ~10x L1 hit-rate gap the paper measures with Nsight.
 */

#ifndef MMGEN_CACHE_ATTENTION_STUDY_HH
#define MMGEN_CACHE_ATTENTION_STUDY_HH

#include <map>

#include "cache/hierarchy.hh"
#include "cache/trace_gen.hh"
#include "graph/op.hh"

namespace mmgen::cache {

/** Hit rates per kernel class for one attention configuration. */
struct AttentionCacheReport
{
    std::map<kernels::KernelClass, LevelStats> stats;

    double l1HitRate(kernels::KernelClass klass) const;
    double l2HitRate(kernels::KernelClass klass) const;
};

/**
 * Build the Q/K/V/S/O layouts for an attention call and replay its
 * kernels against a fresh cache hierarchy.
 *
 * @param gpu          simulated device (cache geometry source)
 * @param attrs        attention shapes and layout strides
 * @param dtype        element type
 * @param max_batches  cap on simulated (batch) entries per kernel to
 *                     bound trace length; 0 = simulate everything
 * @param backend      Baseline replays the 4-kernel eager sequence;
 *                     Flash replays one fused kernel that streams K/V
 *                     per query tile and never touches an S matrix
 */
AttentionCacheReport
runAttentionCacheStudy(const hw::GpuSpec& gpu,
                       const graph::AttentionAttrs& attrs, DType dtype,
                       std::int64_t max_batches = 0,
                       graph::AttentionBackend backend =
                           graph::AttentionBackend::Baseline);

/**
 * Layout of one attention operand under the attrs' stride model
 * (exposed for tests).
 */
MatrixLayout attentionOperandLayout(const graph::AttentionAttrs& attrs,
                                    std::uint64_t base_bytes,
                                    std::int64_t rows,
                                    std::size_t elem_bytes);

} // namespace mmgen::cache

#endif // MMGEN_CACHE_ATTENTION_STUDY_HH
