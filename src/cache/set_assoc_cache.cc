#include "set_assoc_cache.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mmgen::cache {

namespace {

bool
isPowerOfTwo(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

int
log2OfPowerOfTwo(std::uint64_t x)
{
    int n = 0;
    while ((x >>= 1) != 0)
        ++n;
    return n;
}

} // namespace

CacheStats&
CacheStats::operator+=(const CacheStats& other)
{
    accesses += other.accesses;
    hits += other.hits;
    return *this;
}

SetAssocCache::SetAssocCache(std::string name, std::int64_t capacity_bytes,
                             int associativity, int line_bytes)
    : name_(std::move(name)), assoc(associativity), line(line_bytes)
{
    MMGEN_CHECK(capacity_bytes > 0, "capacity must be positive");
    MMGEN_CHECK(associativity > 0, "associativity must be positive");
    MMGEN_CHECK(isPowerOfTwo(static_cast<std::uint64_t>(line_bytes)),
                "line size " << line_bytes << " not a power of two");
    const std::int64_t set_bytes =
        static_cast<std::int64_t>(line_bytes) * associativity;
    MMGEN_CHECK(capacity_bytes % set_bytes == 0,
                "capacity " << capacity_bytes
                            << " not a multiple of way size " << set_bytes);
    lineShift = log2OfPowerOfTwo(static_cast<std::uint64_t>(line_bytes));
    numSets = static_cast<std::uint64_t>(capacity_bytes / set_bytes);
    MMGEN_CHECK(numSets > 0, "cache has zero sets");
    tags.assign(numSets * static_cast<std::uint64_t>(assoc), 0);
}

bool
SetAssocCache::access(std::uint64_t addr)
{
    ++stats_.accesses;
    const std::uint64_t line_addr = addr >> lineShift;
    // Tag 0 marks an invalid way; offset stored tags by 1.
    const std::uint64_t tag = line_addr + 1;
    const std::uint64_t set = line_addr % numSets;
    std::uint64_t* ways = &tags[set * static_cast<std::uint64_t>(assoc)];

    for (int w = 0; w < assoc; ++w) {
        if (ways[w] == tag) {
            // Move to front (MRU).
            for (int i = w; i > 0; --i)
                ways[i] = ways[i - 1];
            ways[0] = tag;
            ++stats_.hits;
            return true;
        }
    }
    // Miss: evict LRU (back), insert at front.
    for (int i = assoc - 1; i > 0; --i)
        ways[i] = ways[i - 1];
    ways[0] = tag;
    return false;
}

void
SetAssocCache::reset()
{
    stats_ = CacheStats();
    std::fill(tags.begin(), tags.end(), 0);
}

std::int64_t
SetAssocCache::capacityBytes() const
{
    return static_cast<std::int64_t>(numSets) * assoc * line;
}

} // namespace mmgen::cache
