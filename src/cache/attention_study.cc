#include "attention_study.hh"

#include <algorithm>

#include "util/logging.hh"

namespace mmgen::cache {

using kernels::KernelClass;

double
AttentionCacheReport::l1HitRate(KernelClass klass) const
{
    auto it = stats.find(klass);
    return it == stats.end() ? 0.0 : it->second.l1.hitRate();
}

double
AttentionCacheReport::l2HitRate(KernelClass klass) const
{
    auto it = stats.find(klass);
    return it == stats.end() ? 0.0 : it->second.l2.hitRate();
}

MatrixLayout
attentionOperandLayout(const graph::AttentionAttrs& attrs,
                       std::uint64_t base_bytes, std::int64_t rows,
                       std::size_t elem_bytes)
{
    MatrixLayout m;
    m.baseBytes = base_bytes;
    m.elemBytes = elem_bytes;
    if (attrs.featureStrideElems == 1) {
        // Contiguous channels-last [batch, rows, heads * headDim]:
        // matrix (b, h) has row stride heads*headDim, head offset
        // h*headDim.
        m.rowStrideElems = attrs.heads * attrs.headDim;
        m.elemStrideElems = 1;
        m.batchDims = {
            {attrs.heads, attrs.headDim},
            {attrs.batch, rows * attrs.heads * attrs.headDim},
        };
    } else {
        // Conv-native [vb, C, rows, inner] viewed with the attended
        // axis as sequence: the batch decomposes into the spatial
        // positions (inner, stride 1), the heads (stride
        // headDim * featureStride), and the outer video batch.
        const std::int64_t inner = attrs.seqStrideElems;
        MMGEN_CHECK(inner > 0 && attrs.batch % inner == 0,
                    "strided attention batch " << attrs.batch
                        << " not divisible by inner extent " << inner);
        const std::int64_t head_stride =
            attrs.headDim * attrs.featureStrideElems;
        m.rowStrideElems = attrs.seqStrideElems;
        m.elemStrideElems = attrs.featureStrideElems;
        m.batchDims = {
            {inner, 1},
            {attrs.heads, head_stride},
            {attrs.batch / inner, attrs.heads * head_stride},
        };
    }
    return m;
}

AttentionCacheReport
runAttentionCacheStudy(const hw::GpuSpec& gpu,
                       const graph::AttentionAttrs& attrs, DType dtype,
                       std::int64_t max_batches,
                       graph::AttentionBackend backend)
{
    MMGEN_CHECK(backend == graph::AttentionBackend::Baseline ||
                    backend == graph::AttentionBackend::Flash,
                "cache study supports baseline and flash backends");
    const std::size_t eb = dtypeBytes(dtype);
    // Well-separated buffer bases (addresses are symbolic).
    const std::uint64_t gib = 1ULL << 30;
    const MatrixLayout q =
        attentionOperandLayout(attrs, 1 * gib, attrs.seqQ, eb);
    const MatrixLayout k =
        attentionOperandLayout(attrs, 32 * gib, attrs.seqKv, eb);
    const MatrixLayout v =
        attentionOperandLayout(attrs, 64 * gib, attrs.seqKv, eb);
    const std::int64_t bh = attrs.batch * attrs.heads;
    const MatrixLayout s = MatrixLayout::contiguous(
        96 * gib, bh, attrs.seqQ, attrs.seqKv, eb);
    const MatrixLayout o =
        attentionOperandLayout(attrs, 128 * gib, attrs.seqQ, eb);

    // Transposed view of V: the AV GEMM's B operand is indexed
    // [headDim rows x seqKv elems].
    MatrixLayout v_t = v;
    std::swap(v_t.rowStrideElems, v_t.elemStrideElems);

    GpuCacheModel model(gpu);
    const std::int64_t max_rows =
        max_batches > 0 ? max_batches * attrs.seqQ : 0;

    if (backend == graph::AttentionBackend::Flash) {
        // One fused kernel: each query-tile CTA reads its Q tile,
        // streams every K and V tile, and writes its O tile. The
        // whole-K/V stream per CTA is the same algorithmic reuse the
        // baseline QK GEMM has, with no similarity-matrix traffic.
        GemmTraceParams p;
        p.m = attrs.seqQ;
        p.n = attrs.seqKv;
        p.k = attrs.headDim;
        p.a = q;
        p.b = k; // K streamed per CTA
        p.c = o; // O written per query tile
        p.maxBatches = max_batches;
        runGemmTrace(model, p);
        // V streams through the same kernel (second operand pass).
        GemmTraceParams pv = p;
        pv.b = v;
        pv.c = o;
        runGemmTrace(model, pv);
        AttentionCacheReport report;
        report.stats = model.stats();
        return report;
    }

    // 1. S = Q K^T
    {
        GemmTraceParams p;
        p.m = attrs.seqQ;
        p.n = attrs.seqKv;
        p.k = attrs.headDim;
        p.a = q;
        p.b = k;
        p.c = s;
        p.maxBatches = max_batches;
        runGemmTrace(model, p);
    }
    model.invalidateL1s();
    // 2. scale S
    {
        ElementwiseTraceParams p;
        p.rows = attrs.seqQ;
        p.cols = attrs.seqKv;
        p.mat = s;
        p.maxRows = max_rows;
        runElementwiseTrace(model, p);
    }
    model.invalidateL1s();
    // 3. softmax rows of S
    {
        SoftmaxTraceParams p;
        p.rows = attrs.seqQ;
        p.cols = attrs.seqKv;
        p.mat = s;
        p.maxRows = max_rows;
        runSoftmaxTrace(model, p);
    }
    model.invalidateL1s();
    // 4. O = S V
    {
        GemmTraceParams p;
        p.m = attrs.seqQ;
        p.n = attrs.headDim;
        p.k = attrs.seqKv;
        p.a = s;
        p.b = v_t;
        p.c = o;
        p.maxBatches = max_batches;
        runGemmTrace(model, p);
    }

    AttentionCacheReport report;
    report.stats = model.stats();
    return report;
}

} // namespace mmgen::cache
