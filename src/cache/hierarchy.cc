#include "hierarchy.hh"

#include "util/logging.hh"

namespace mmgen::cache {

GpuCacheModel::GpuCacheModel(const hw::GpuSpec& gpu,
                             std::int64_t l1_data_bytes)
    : line(gpu.cacheLineBytes)
{
    const std::int64_t l1_bytes =
        l1_data_bytes > 0 ? l1_data_bytes : 128LL * 1024;
    MMGEN_CHECK(gpu.numSms > 0, "GPU spec has no SMs");
    l1s.reserve(static_cast<std::size_t>(gpu.numSms));
    for (int i = 0; i < gpu.numSms; ++i) {
        l1s.push_back(std::make_unique<SetAssocCache>(
            "l1." + std::to_string(i), l1_bytes, 4, line));
    }
    l2 = std::make_unique<SetAssocCache>("l2", gpu.l2Bytes, 16, line);
}

void
GpuCacheModel::access(int sm, std::uint64_t addr,
                      kernels::KernelClass klass, bool is_write)
{
    MMGEN_ASSERT(sm >= 0 && sm < numSms(), "SM index " << sm
                                               << " out of range");
    LevelStats& st = stats_[klass];
    if (is_write) {
        // Write-through, no-write-allocate L1: stores go straight to
        // the L2 and do not perturb (or count toward) L1 statistics.
        const bool l2_hit = l2->access(addr);
        ++st.l2.accesses;
        if (l2_hit)
            ++st.l2.hits;
        return;
    }
    const bool l1_hit = l1s[static_cast<std::size_t>(sm)]->access(addr);
    ++st.l1.accesses;
    if (l1_hit) {
        ++st.l1.hits;
        return;
    }
    const bool l2_hit = l2->access(addr);
    ++st.l2.accesses;
    if (l2_hit)
        ++st.l2.hits;
}

LevelStats
GpuCacheModel::statsFor(kernels::KernelClass klass) const
{
    auto it = stats_.find(klass);
    return it == stats_.end() ? LevelStats{} : it->second;
}

void
GpuCacheModel::invalidateL1s()
{
    // Reporting counters live in the per-class stats_ map, so dropping
    // the L1 contents (and their internal counters) is sufficient.
    for (auto& l1 : l1s)
        l1->reset();
}

void
GpuCacheModel::reset()
{
    for (auto& l1 : l1s)
        l1->reset();
    l2->reset();
    stats_.clear();
}

} // namespace mmgen::cache
