/**
 * @file
 * Kernel address-trace generators.
 *
 * Each generator replays the memory access pattern of one device
 * kernel class against the cache hierarchy, at sector granularity with
 * consecutive-sector deduplication (a warp's coalesced accesses to one
 * sector count once). CTAs are block-assigned to SMs, modeling the
 * persistent-CTA rasterization of library GEMM kernels, which is what
 * lets a tile re-read hit in a private L1.
 */

#ifndef MMGEN_CACHE_TRACE_GEN_HH
#define MMGEN_CACHE_TRACE_GEN_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "cache/hierarchy.hh"

namespace mmgen::cache {

/**
 * Element-address map of one batched logical matrix.
 *
 * addr(b, r, e) = base + (offset of batch b + r * rowStride +
 * e * elemStride) * elemBytes, where batch b is decomposed over
 * batchDims (innermost first) as mixed-radix digits.
 */
struct MatrixLayout
{
    std::uint64_t baseBytes = 0;
    std::int64_t rowStrideElems = 0;
    std::int64_t elemStrideElems = 1;
    /** (size, strideElems) pairs, innermost first; product = batch. */
    std::vector<std::pair<std::int64_t, std::int64_t>> batchDims;
    std::size_t elemBytes = 2;

    /** Total batch count (product of batchDims sizes). */
    std::int64_t batchCount() const;

    /** Byte address of element (b, r, e). */
    std::uint64_t addr(std::int64_t b, std::int64_t r,
                       std::int64_t e) const;

    /** Dense row-major [batch, rows, elems] layout. */
    static MatrixLayout contiguous(std::uint64_t base_bytes,
                                   std::int64_t batch, std::int64_t rows,
                                   std::int64_t elems,
                                   std::size_t elem_bytes);
};

/**
 * Batched GEMM trace: C[b] (m x n) = A[b] (m x k) * B[b]^T (n x k).
 *
 * B is stored row-major over n (the K/V convention in attention);
 * every M-tile CTA re-reads all of B, which is the algorithmic reuse
 * a long query sequence enjoys and a short one does not.
 */
struct GemmTraceParams
{
    std::int64_t m = 0;
    std::int64_t n = 0;
    std::int64_t k = 0;
    MatrixLayout a;
    MatrixLayout b;
    MatrixLayout c;
    std::int64_t tileM = 64;
    /** Simulate only the first maxBatches batch entries (0 = all). */
    std::int64_t maxBatches = 0;
    kernels::KernelClass klass = kernels::KernelClass::Gemm;
};

/** Replay a batched GEMM against the hierarchy. */
void runGemmTrace(GpuCacheModel& model, const GemmTraceParams& p);

/**
 * Softmax trace over a dense [batch*rows, cols] matrix. Rows longer
 * than registerBytes take two read passes (online max/sum, then
 * normalize); short rows fit in registers and are read once — which is
 * why tiny temporal-attention softmaxes show no L1 reuse.
 */
struct SoftmaxTraceParams
{
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    MatrixLayout mat;
    std::int64_t registerBytes = 256;
    std::int64_t maxRows = 0;
    kernels::KernelClass klass = kernels::KernelClass::Softmax;
};

/** Replay a row softmax against the hierarchy. */
void runSoftmaxTrace(GpuCacheModel& model, const SoftmaxTraceParams& p);

/**
 * Streaming elementwise trace (read + write over the same layout).
 */
struct ElementwiseTraceParams
{
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    MatrixLayout mat;
    std::int64_t maxRows = 0;
    kernels::KernelClass klass = kernels::KernelClass::Elementwise;
};

/** Replay a streaming elementwise kernel against the hierarchy. */
void runElementwiseTrace(GpuCacheModel& model,
                         const ElementwiseTraceParams& p);

} // namespace mmgen::cache

#endif // MMGEN_CACHE_TRACE_GEN_HH
