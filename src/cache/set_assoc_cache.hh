/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * Used to replay kernel address traces and report hit rates, standing
 * in for the Nsight Compute cache counters the paper reads (Fig. 12).
 * Lines are sector-sized (32 B on A100-class parts): hit rates then
 * reflect genuine data reuse rather than intra-line streaming.
 */

#ifndef MMGEN_CACHE_SET_ASSOC_CACHE_HH
#define MMGEN_CACHE_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace mmgen::cache {

/** Hit/miss counters for one cache. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;

    std::uint64_t misses() const { return accesses - hits; }

    double
    hitRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(hits) /
                         static_cast<double>(accesses);
    }

    CacheStats& operator+=(const CacheStats& other);
};

/**
 * A single set-associative, allocate-on-miss, LRU cache.
 */
class SetAssocCache
{
  public:
    /**
     * @param name           label for reports
     * @param capacity_bytes total capacity; must be a multiple of
     *                       line_bytes * associativity
     * @param associativity  ways per set
     * @param line_bytes     line (sector) size; power of two
     */
    SetAssocCache(std::string name, std::int64_t capacity_bytes,
                  int associativity, int line_bytes);

    /** Access a byte address; returns true on hit, allocates on miss. */
    bool access(std::uint64_t addr);

    /** Counters since construction or last reset. */
    const CacheStats& stats() const { return stats_; }

    /** Clear counters and contents. */
    void reset();

    std::int64_t capacityBytes() const;
    int associativity() const { return assoc; }
    int lineBytes() const { return line; }
    const std::string& name() const { return name_; }

  private:
    std::string name_;
    int assoc;
    int line;
    int lineShift;
    std::uint64_t numSets;
    /** ways per set, LRU-ordered front = most recent; 0 = invalid. */
    std::vector<std::uint64_t> tags;
    CacheStats stats_;
};

} // namespace mmgen::cache

#endif // MMGEN_CACHE_SET_ASSOC_CACHE_HH
