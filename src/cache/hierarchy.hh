/**
 * @file
 * GPU cache hierarchy: per-SM private L1s in front of a shared L2.
 *
 * Accesses are attributed to a kernel class so hit rates can be
 * reported per class, matching how the paper groups Nsight counters
 * into gemm / softmax / elementwise kernels (Fig. 12).
 */

#ifndef MMGEN_CACHE_HIERARCHY_HH
#define MMGEN_CACHE_HIERARCHY_HH

#include <map>
#include <memory>
#include <vector>

#include "cache/set_assoc_cache.hh"
#include "hw/gpu_spec.hh"
#include "kernels/kernel_cost.hh"

namespace mmgen::cache {

/** L1 + L2 hit statistics for one kernel class. */
struct LevelStats
{
    CacheStats l1;
    CacheStats l2;
};

/**
 * Private-L1 / shared-L2 hierarchy driven by kernel traces.
 */
class GpuCacheModel
{
  public:
    /**
     * Build a hierarchy sized from the GPU spec.
     *
     * @param gpu            simulated device
     * @param l1_data_bytes  modeled L1 data capacity per SM (the
     *                       remainder of the 192 KiB is shared memory);
     *                       0 picks a default of 128 KiB
     */
    explicit GpuCacheModel(const hw::GpuSpec& gpu,
                           std::int64_t l1_data_bytes = 0);

    /**
     * One sector access from a given SM, attributed to a kernel class.
     *
     * Loads consult the L1 first and fill it on a miss; the L2 is only
     * consulted on an L1 miss. Stores model the write-through,
     * no-write-allocate policy of GPU L1s: they bypass the L1 (and its
     * statistics) and allocate directly in the L2, which is what lets
     * a later kernel re-read its producer's output from L2.
     */
    void access(int sm, std::uint64_t addr, kernels::KernelClass klass,
                bool is_write = false);

    /** Number of modeled SMs (L1 instances). */
    int numSms() const { return static_cast<int>(l1s.size()); }

    /** Sector size in bytes. */
    int lineBytes() const { return line; }

    /** Per-kernel-class statistics. */
    const std::map<kernels::KernelClass, LevelStats>& stats() const
    {
        return stats_;
    }

    /** Statistics for one class (zeros if the class never ran). */
    LevelStats statsFor(kernels::KernelClass klass) const;

    /**
     * Invalidate the (non-coherent) private L1s, as real GPUs do at
     * kernel boundaries. L2 contents and all statistics survive —
     * which is exactly what lets a small similarity matrix written by
     * one kernel be re-read from L2 by the next.
     */
    void invalidateL1s();

    /** Clear all cache contents and counters. */
    void reset();

  private:
    int line;
    std::vector<std::unique_ptr<SetAssocCache>> l1s;
    std::unique_ptr<SetAssocCache> l2;
    std::map<kernels::KernelClass, LevelStats> stats_;
};

} // namespace mmgen::cache

#endif // MMGEN_CACHE_HIERARCHY_HH
