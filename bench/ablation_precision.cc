/**
 * @file
 * Ablation: int8 quantization what-if. Re-traces suite models with
 * int8 weights/activations (halved HBM traffic, doubled tensor-core
 * rate on Ampere/Hopper) and reports the latency and capacity
 * implications — a what-if the simulation substrate makes cheap.
 */

#include <iostream>

#include "analytics/inference_footprint.hh"
#include "models/model_suite.hh"
#include "profiler/engine.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Ablation: fp16 vs int8 inference ===\n\n";

    profiler::Profiler prof;
    TextTable table({"Model", "fp16 latency", "int8 latency",
                     "Speedup", "fp16 weights", "int8 weights"});
    for (models::ModelId id :
         {models::ModelId::StableDiffusion, models::ModelId::Muse,
          models::ModelId::Parti, models::ModelId::LLaMA}) {
        graph::Pipeline p = models::buildModel(id);
        const profiler::ProfileResult f16 = prof.profile(p);
        p.dtype = DType::I8;
        const profiler::ProfileResult i8 = prof.profile(p);
        const analytics::InferenceFootprint fp16_mem =
            analytics::estimateFootprint(
                models::buildModel(id), graph::AttentionBackend::Flash,
                DType::F16);
        const analytics::InferenceFootprint i8_mem =
            analytics::estimateFootprint(
                p, graph::AttentionBackend::Flash, DType::I8);
        table.addRow(
            {p.name, formatTime(f16.totalSeconds),
             formatTime(i8.totalSeconds),
             formatFixed(f16.totalSeconds / i8.totalSeconds, 2) + "x",
             formatBytes(fp16_mem.weightBytes),
             formatBytes(i8_mem.weightBytes)});
    }
    std::cout << table.render();
    std::cout << "\n(int8 helps the memory-bound decoders most — "
                 "weight reads halve — while\n launch-overhead-bound "
                 "segments cap the gain below the ideal 2x)\n";
    return 0;
}
