/**
 * @file
 * Reproduces paper Fig. 11: over the course of Make-A-Video inference,
 * Temporal Attention takes ~2x the execution time of Spatial
 * Attention while using ~9x fewer FLOPs.
 */

#include <iostream>

#include "core/suite.hh"
#include "models/make_a_video.hh"
#include "util/format.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Fig. 11: Temporal vs Spatial Attention in "
                 "Make-A-Video ===\n\n";

    core::CharacterizationSuite suite;
    const profiler::ProfileResult res = suite.profileOne(
        models::buildMakeAVideo(), graph::AttentionBackend::Baseline);

    const auto spatial =
        res.attention.entryFor(graph::AttentionKind::SelfSpatial);
    const auto temporal =
        res.attention.entryFor(graph::AttentionKind::Temporal);
    const auto cross =
        res.attention.entryFor(graph::AttentionKind::CrossText);

    std::cout << "Spatial attention:  " << formatTime(spatial.seconds)
              << "  " << formatFlops(spatial.flops) << "  ("
              << spatial.calls << " calls)\n";
    std::cout << "Temporal attention: " << formatTime(temporal.seconds)
              << "  " << formatFlops(temporal.flops) << "  ("
              << temporal.calls << " calls)\n";
    std::cout << "Cross attention:    " << formatTime(cross.seconds)
              << "  " << formatFlops(cross.flops) << "  ("
              << cross.calls << " calls)\n\n";

    const double time_ratio = temporal.seconds / spatial.seconds;
    const double flop_ratio = spatial.flops / temporal.flops;
    std::cout << "Temporal / Spatial execution time: "
              << formatFixed(time_ratio, 2) << "x   (paper: ~2x)\n";
    std::cout << "Spatial / Temporal FLOPs:          "
              << formatFixed(flop_ratio, 2) << "x   (paper: ~9x)\n";

    const double frac_of_attn =
        temporal.seconds / (temporal.seconds + spatial.seconds +
                            cross.seconds);
    std::cout << "Temporal share of total Attention time: "
              << formatPercent(frac_of_attn)
              << "  (paper: over 60%)\n";
    return 0;
}
