/**
 * @file
 * Reproduces the paper's Section V analytical memory model: the
 * similarity-matrix memory formulas over the UNet ladder and the
 * O(L^4) image-size scaling law, cross-checked against the simulated
 * Stable Diffusion attention footprint.
 */

#include <cmath>
#include <iostream>
#include <vector>

#include "analytics/memory_model.hh"
#include "core/suite.hh"
#include "exec/liveness.hh"
#include "exec/plan.hh"
#include "kernels/attention.hh"
#include "kernels/cost_model.hh"
#include "models/stable_diffusion.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

/**
 * Largest similarity workspace the liveness analyzer tracks inside
 * the UNet when SD is lowered with the eager baseline backend.
 */
double
maxUnetWorkspaceBytes(std::int64_t image_size,
                      mmgen::graph::AttentionBackend backend)
{
    using namespace mmgen;
    models::StableDiffusionConfig cfg;
    cfg.imageSize = image_size;
    const graph::Pipeline p = models::buildStableDiffusion(cfg);
    const kernels::CostModel model(hw::GpuSpec::a100_80gb(), backend,
                                   kernels::EfficiencyParams::defaults());
    const exec::ExecutionPlan plan = exec::lowerPipeline(p, model);
    const exec::Liveness live = exec::deriveLiveness(plan);
    double peak = 0.0;
    for (const exec::LiveBuffer& b : live.buffers) {
        if (b.kind != exec::BufferKind::Workspace)
            continue;
        if (plan.ops[b.opIndex].scope.rfind("unet", 0) == 0)
            peak = std::max(peak, b.bytes);
    }
    return peak;
}

} // namespace

int
main()
{
    using namespace mmgen;

    std::cout << "=== Section V: analytical diffusion memory model ===\n\n";

    // Per-stage similarity memory of the paper's closed form,
    // SD geometry (latent 64, text 77, d = 2, depth 3).
    analytics::DiffusionMemoryModel m;
    m.latentH = m.latentW = 64;
    m.textEncode = 77;
    m.downFactor = 2;
    m.unetDepth = 3;

    TextTable table({"UNet stage", "Positions (HW)",
                     "Self S entries", "Cross S entries",
                     "Similarity bytes"});
    for (int n = 0; n <= m.unetDepth; ++n) {
        table.addRow({std::to_string(n),
                      std::to_string(m.positionsAtStage(n)),
                      formatCount(m.selfSimilarityEntries(n)),
                      formatCount(m.crossSimilarityEntries(n)),
                      formatBytes(m.similarityBytesAtStage(n))});
    }
    std::cout << table.render() << "\n";
    std::cout << "Cumulative similarity bytes over one UNet pass: "
              << formatBytes(m.cumulativeSimilarityBytes()) << "\n\n";

    // O(L^4): fit the scaling exponent of cumulative similarity
    // memory against latent extent.
    std::vector<double> extents, bytes;
    for (std::int64_t latent : {16, 32, 64, 128}) {
        analytics::DiffusionMemoryModel s = m;
        s.latentH = s.latentW = latent;
        extents.push_back(static_cast<double>(latent));
        bytes.push_back(s.cumulativeSimilarityBytes());
    }
    std::cout << "Scaling exponent of similarity memory vs latent "
                 "extent: "
              << formatFixed(analytics::scalingExponent(extents, bytes),
                             2)
              << "   (paper: O(L^4) -> 4)\n\n";

    // Cross-check the closed form against the simulated SD UNet's
    // materialized similarity matrices (single head, batch 1, as in
    // the paper's derivation).
    graph::AttentionAttrs probe;
    probe.batch = 1;
    probe.heads = 1;
    probe.seqQ = probe.seqKv = 64 * 64;
    probe.headDim = 320;
    const double self_bytes =
        kernels::similarityMatrixBytes(probe, 2);
    std::cout << "Kernel-model similarity bytes at stage 0 (self): "
              << formatBytes(self_bytes)
              << " vs analytical "
              << formatBytes(2.0 * m.selfSimilarityEntries(0))
              << "\n\n";

    // Reconcile the closed form against the *liveness analyzer*: when
    // SD is lowered with the eager baseline backend, the analyzer
    // tracks the materialized similarity matrix as an op-scoped
    // workspace buffer, so the largest UNet workspace must scale
    // O(L^4) in the latent extent — the same law the analytic model
    // derives — and flash lowering must make it vanish.
    std::cout << "--- liveness analyzer cross-check (baseline UNet "
                 "workspace) ---\n";
    std::vector<double> live_extents, live_bytes;
    for (std::int64_t image : {256, 512, 1024}) {
        const std::int64_t latent = image / 8;
        const double ws = maxUnetWorkspaceBytes(
            image, graph::AttentionBackend::Baseline);
        live_extents.push_back(static_cast<double>(latent));
        live_bytes.push_back(ws);
        std::cout << "  latent " << latent
                  << ": max UNet similarity workspace "
                  << formatBytes(ws) << "\n";
    }
    const double live_exp =
        analytics::scalingExponent(live_extents, live_bytes);
    const double flash_ws = maxUnetWorkspaceBytes(
        512, graph::AttentionBackend::Flash);
    std::cout << "  liveness scaling exponent: "
              << formatFixed(live_exp, 2)
              << "   (analytical model: 4)\n";
    std::cout << "  flash-lowered UNet workspace: "
              << formatBytes(flash_ws) << "   (expected 0)\n";
    if (std::abs(live_exp - 4.0) > 0.25 || flash_ws != 0.0) {
        std::cerr << "FAIL: liveness analyzer disagrees with the "
                     "Section V closed form\n";
        return 1;
    }
    return 0;
}
