/**
 * @file
 * Reproduces the paper's Section V analytical memory model: the
 * similarity-matrix memory formulas over the UNet ladder and the
 * O(L^4) image-size scaling law, cross-checked against the simulated
 * Stable Diffusion attention footprint.
 */

#include <iostream>
#include <vector>

#include "analytics/memory_model.hh"
#include "core/suite.hh"
#include "kernels/attention.hh"
#include "models/stable_diffusion.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Section V: analytical diffusion memory model ===\n\n";

    // Per-stage similarity memory of the paper's closed form,
    // SD geometry (latent 64, text 77, d = 2, depth 3).
    analytics::DiffusionMemoryModel m;
    m.latentH = m.latentW = 64;
    m.textEncode = 77;
    m.downFactor = 2;
    m.unetDepth = 3;

    TextTable table({"UNet stage", "Positions (HW)",
                     "Self S entries", "Cross S entries",
                     "Similarity bytes"});
    for (int n = 0; n <= m.unetDepth; ++n) {
        table.addRow({std::to_string(n),
                      std::to_string(m.positionsAtStage(n)),
                      formatCount(m.selfSimilarityEntries(n)),
                      formatCount(m.crossSimilarityEntries(n)),
                      formatBytes(m.similarityBytesAtStage(n))});
    }
    std::cout << table.render() << "\n";
    std::cout << "Cumulative similarity bytes over one UNet pass: "
              << formatBytes(m.cumulativeSimilarityBytes()) << "\n\n";

    // O(L^4): fit the scaling exponent of cumulative similarity
    // memory against latent extent.
    std::vector<double> extents, bytes;
    for (std::int64_t latent : {16, 32, 64, 128}) {
        analytics::DiffusionMemoryModel s = m;
        s.latentH = s.latentW = latent;
        extents.push_back(static_cast<double>(latent));
        bytes.push_back(s.cumulativeSimilarityBytes());
    }
    std::cout << "Scaling exponent of similarity memory vs latent "
                 "extent: "
              << formatFixed(analytics::scalingExponent(extents, bytes),
                             2)
              << "   (paper: O(L^4) -> 4)\n\n";

    // Cross-check the closed form against the simulated SD UNet's
    // materialized similarity matrices (single head, batch 1, as in
    // the paper's derivation).
    graph::AttentionAttrs probe;
    probe.batch = 1;
    probe.heads = 1;
    probe.seqQ = probe.seqKv = 64 * 64;
    probe.headDim = 320;
    const double self_bytes =
        kernels::similarityMatrixBytes(probe, 2);
    std::cout << "Kernel-model similarity bytes at stage 0 (self): "
              << formatBytes(self_bytes)
              << " vs analytical "
              << formatBytes(2.0 * m.selfSimilarityEntries(0))
              << "\n";
    return 0;
}
