/**
 * @file
 * Ablation: sensitivity of the headline Table II result to the two
 * load-bearing calibration constants (DESIGN.md Section 5):
 *   - baselineSimilarityUpcast: the eager softmax fp32 materialization
 *   - convPeakFraction: attained cuDNN convolution efficiency.
 * The qualitative finding (diffusion >> transformer TTI speedups)
 * must hold across the plausible range of both constants.
 */

#include <iostream>

#include "models/model_suite.hh"
#include "profiler/engine.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace mmgen;

double
speedupWith(models::ModelId id, const kernels::EfficiencyParams& params)
{
    const graph::Pipeline p = models::buildModel(id);
    profiler::ProfileOptions opts;
    opts.efficiency = params;
    opts.backend = graph::AttentionBackend::Baseline;
    const double base = profiler::Profiler(opts).profile(p).totalSeconds;
    opts.backend = graph::AttentionBackend::Flash;
    const double flash =
        profiler::Profiler(opts).profile(p).totalSeconds;
    return base / flash;
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: calibration-constant sensitivity ===\n\n";

    TextTable table({"Upcast", "Conv peak", "SD speedup",
                     "Muse speedup", "SD / Muse"});
    for (double upcast : {1.0, 1.5, 2.1, 3.0}) {
        for (double conv : {0.55, 0.65, 0.75}) {
            kernels::EfficiencyParams params;
            params.baselineSimilarityUpcast = upcast;
            params.convPeakFraction = conv;
            const double sd =
                speedupWith(models::ModelId::StableDiffusion, params);
            const double muse =
                speedupWith(models::ModelId::Muse, params);
            table.addRow({formatFixed(upcast, 1), formatFixed(conv, 2),
                          formatFixed(sd, 2) + "x",
                          formatFixed(muse, 2) + "x",
                          formatFixed(sd / muse, 2)});
        }
        table.addSeparator();
    }
    std::cout << table.render();
    std::cout << "\n(the diffusion-over-transformer speedup gap "
                 "survives every calibration point;\n the constants "
                 "set its magnitude, not its direction)\n";
    return 0;
}
