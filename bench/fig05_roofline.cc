/**
 * @file
 * Reproduces paper Fig. 5: the model suite on an A100 roofline.
 *
 * Arithmetic intensity follows the paper's definition — total
 * inference FLOPs over the bytes of model capacity (parameters) they
 * reuse. Diffusion models iterate tens of denoising steps over a
 * small parameter set, so their intensity is orders of magnitude
 * higher (compute-bound); transformer TTI decode touches every weight
 * for one token of work (memory-bound at low batch).
 */

#include <iostream>

#include "core/reports.hh"
#include "core/suite.hh"
#include "util/format.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Fig. 5: roofline on "
              << hw::GpuSpec::a100_80gb().name << " ===\n\n";

    core::CharacterizationSuite suite;
    const std::vector<core::ModelRunResult> results =
        suite.runAll(models::allModels());

    const hw::Roofline roofline(suite.gpu(), DType::F16);
    std::cout << "Peak compute: "
              << formatFlopRate(roofline.peakFlops())
              << ", HBM bandwidth: "
              << formatBytes(roofline.bandwidth()) << "/s, ridge at "
              << formatFixed(roofline.ridgePoint(), 1)
              << " FLOP/byte\n\n";

    std::cout << core::rooflineTable(results, suite.gpu()).render()
              << "\n";

    // The paper's headline: diffusion arithmetic intensity exceeds the
    // LLM's decode-dominated intensity by up to ~100x.
    double llm_ai = 0.0, max_diff_ai = 0.0;
    for (const auto& r : results) {
        const graph::ModelClass klass = models::buildModel(r.id).klass;
        const double ai = r.flash.modelArithmeticIntensity();
        if (klass == graph::ModelClass::LLM)
            llm_ai = ai;
        else if (graph::isDiffusionClass(klass))
            max_diff_ai = std::max(max_diff_ai, ai);
    }
    std::cout << "Max diffusion AI / LLM AI: "
              << formatFixed(max_diff_ai / llm_ai, 1)
              << "x  (paper: up to ~100x)\n";
    return 0;
}
