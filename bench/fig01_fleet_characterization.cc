/**
 * @file
 * Reproduces paper Fig. 1: fleet-level training characterization.
 *
 * TTI models use ~14x more GPUs per model parameter during training
 * than LLMs, and run at ~1.4x (≈ +10 points) higher memory
 * utilization. The fleet here is synthetic (see DESIGN.md) but flows
 * through the same aggregation pipeline.
 */

#include <iostream>

#include "fleet/aggregate.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Fig. 1: fleet-wide training characterization ===\n"
              << "(paper: TTI uses 14x more GPUs/param than LLM; ~1.4x "
                 "higher memory utilization)\n\n";

    fleet::PopulationConfig cfg;
    const std::vector<fleet::TrainingJob> jobs =
        fleet::generateFleet(cfg);
    const fleet::FleetReport report =
        fleet::aggregateFleet(jobs, cfg.gpu);

    TextTable table({"Class", "Jobs", "Total GPUs", "Total params",
                     "GPUs / B param", "Mean mem util",
                     "Median mem util"});
    for (const auto& [klass, agg] : report.byClass) {
        table.addRow({fleet::workloadClassName(klass),
                      std::to_string(agg.jobs),
                      std::to_string(agg.totalGpus),
                      formatCount(agg.totalParams),
                      formatFixed(agg.gpusPerBParam, 1),
                      formatPercent(agg.meanMemoryUtilization),
                      formatPercent(agg.medianMemoryUtilization)});
    }
    std::cout << table.render() << "\n";

    std::cout << "TTI / LLM GPUs-per-parameter ratio: "
              << formatFixed(report.ttiOverLlmGpusPerParam(), 1)
              << "x   (paper: ~14x)\n";
    std::cout << "TTI / LLM memory utilization ratio: "
              << formatFixed(report.ttiOverLlmMemoryUtilization(), 2)
              << "x   (paper: ~1.4x)\n";
    std::cout << "TTI - LLM memory utilization:       "
              << formatFixed(report.ttiMinusLlmUtilizationPoints(), 1)
              << " points (paper: ~10)\n";
    return 0;
}
