/**
 * @file
 * Peak inference memory footprint of the suite (the paper's Section
 * III single-GPU claim, and the capacity side of Table I's Memory
 * axis): weights + KV-cache high-water mark + peak activation, per
 * model, against the A100's 80 GB.
 */

#include <iostream>

#include "analytics/inference_footprint.hh"
#include "models/model_suite.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Peak inference memory footprint (single "
                 "A100-80GB) ===\n\n";

    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    TextTable table({"Model", "Weights", "KV cache", "Peak activation",
                     "Total", "HBM util", "Fits"});
    for (models::ModelId id : models::allModels()) {
        const graph::Pipeline p = models::buildModel(id);
        const analytics::InferenceFootprint fp =
            analytics::estimateFootprint(p);
        table.addRow({p.name, formatBytes(fp.weightBytes),
                      formatBytes(fp.kvCacheBytes),
                      formatBytes(fp.peakActivationBytes),
                      formatBytes(fp.totalBytes()),
                      formatPercent(fp.utilization(gpu)),
                      fp.fits(gpu) ? "yes" : "NO"});
    }
    std::cout << table.render();
    std::cout << "\n(paper Section III: every suite model fits a "
                 "single 80 GB GPU at inference;\n Parti's 20B weights "
                 "dominate, matching its Table I Memory = High)\n";
    return 0;
}
