/**
 * @file
 * Peak inference memory footprint of the suite (the paper's Section
 * III single-GPU claim, and the capacity side of Table I's Memory
 * axis), now reconciled two ways: the closed-form analytic proxy
 * (weights + KV high-water mark + peak activation) against the
 * static liveness analyzer's scheduled peak over the lowered plan.
 *
 * Emits `BENCH_memory.json` (path overridable via argv[1]) with both
 * estimates, the reuse bounds and the max feasible batch per model.
 * Exits nonzero when the two estimates diverge by more than 2x for
 * any model, or when any zoo model fails the P010 capacity rule on
 * the paper's evaluation GPU (A100-80GB) — every suite model is
 * claimed to fit a single 80 GB device at inference.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "analytics/inference_footprint.hh"
#include "exec/memory.hh"
#include "models/model_suite.hh"
#include "util/format.hh"
#include "util/json.hh"
#include "util/table.hh"

int
main(int argc, char** argv)
{
    using namespace mmgen;

    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_memory.json";

    std::cout << "=== Peak inference memory footprint (single "
                 "A100-80GB): analytic proxy vs liveness ===\n\n";

    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    TextTable table({"Model", "Weights", "Analytic total",
                     "Liveness peak", "Ratio", "Reuse saves",
                     "Max batch", "Fits"});

    bool ok = true;
    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot open " << out_path << "\n";
        return 1;
    }
    json::Writer w(out);
    w.beginArray();

    for (models::ModelId id : models::allModels()) {
        const graph::Pipeline p = models::buildModel(id);
        const analytics::InferenceFootprint fp =
            analytics::estimateFootprint(p);
        const exec::FeasibilityReport rep =
            exec::analyzeFeasibility(p, gpu);
        const exec::MemoryProfile& mp = rep.profile;

        // Both estimates model the same quantity (peak resident bytes
        // of one inference), one from closed forms and one from the
        // swept plan; a >2x gap means one of them is wrong.
        const double ratio =
            fp.totalBytes() / mp.scheduledPeakBytes;
        const bool agree = ratio <= 2.0 && ratio >= 0.5;
        const bool fits = rep.maxBatch >= 1;
        if (!agree) {
            std::cerr << "DIVERGENCE: " << p.name
                      << " analytic total "
                      << formatBytes(fp.totalBytes())
                      << " vs liveness peak "
                      << formatBytes(mp.scheduledPeakBytes) << "\n";
            ok = false;
        }
        if (!fits) {
            std::cerr << "P010: " << p.name
                      << " does not fit the paper's A100-80GB\n";
            ok = false;
        }

        table.addRow({p.name, formatBytes(mp.weightBytes),
                      formatBytes(fp.totalBytes()),
                      formatBytes(mp.scheduledPeakBytes),
                      formatFixed(ratio, 2),
                      formatBytes(mp.reuseSavingsBytes()),
                      rep.maxBatch >= exec::kUnboundedBatch
                          ? std::string("unbounded")
                          : std::to_string(rep.maxBatch),
                      fits ? "yes" : "NO"});

        w.beginObject()
            .field("model", p.name)
            .field("gpu", gpu.name)
            .field("weight_bytes", mp.weightBytes)
            .field("analytic_total_bytes", fp.totalBytes())
            .field("analytic_kv_cache_bytes", fp.kvCacheBytes)
            .field("analytic_peak_activation_bytes",
                   fp.peakActivationBytes)
            .field("program_peak_bytes", mp.programPeakBytes)
            .field("scheduled_peak_bytes", mp.scheduledPeakBytes)
            .field("no_reuse_bytes", mp.noReuseBytes)
            .field("reuse_savings_bytes", mp.reuseSavingsBytes())
            .field("dynamic_bytes", rep.dynamicBytes)
            .field("max_feasible_batch", rep.maxBatch)
            .field("analytic_vs_liveness_ratio", ratio)
            .field("fits", fits)
            .endObject();
    }
    w.endArray();
    out << "\n";

    std::cout << table.render();
    std::cout << "\n(paper Section III: every suite model fits a "
                 "single 80 GB GPU at inference;\n Parti's 20B weights "
                 "dominate, matching its Table I Memory = High)\n";
    std::cout << "\nwrote per-model reconciliation to " << out_path
              << "\n";
    if (!ok) {
        std::cerr << "\nFAIL: analytic proxy and liveness analyzer "
                     "disagree, or a model breaks P010\n";
        return 1;
    }
    return 0;
}
