/**
 * @file
 * Reproduces paper Table II: end-to-end speedup of Flash Attention
 * over baseline attention across the eight-model suite.
 *
 * Paper reference values:
 *   LLaMA 1.52x, Imagen 1.22x, StableDiffusion 1.67x, Muse 1.11x,
 *   Parti 1.17x, ProdImage 1.04x, MakeAVideo 1.06x, Phenaki 1.15x.
 */

#include <iostream>

#include "core/reports.hh"
#include "core/suite.hh"
#include "util/format.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Table II: end-to-end Flash Attention speedup ===\n";
    std::cout << "(paper: LLaMA 1.52x | Imagen 1.22x | StableDiffusion "
                 "1.67x | Muse 1.11x |\n"
                 " Parti 1.17x | ProdImage 1.04x | MakeAVideo 1.06x | "
                 "Phenaki 1.15x)\n\n";

    core::CharacterizationSuite suite;
    const std::vector<core::ModelRunResult> results =
        suite.runAll(models::allModels());

    std::cout << core::flashSpeedupTable(results).render() << "\n";
    std::cout << "Attention detail (Amdahl decomposition):\n";
    std::cout << core::attentionSpeedupTable(results).render();
    return 0;
}
