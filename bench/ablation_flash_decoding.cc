/**
 * @file
 * Ablation: Flash-Decoding (split-KV attention, the paper's ref [47])
 * on the decode-bound workloads of the suite. The paper identifies
 * transformer TTI models as decode-shaped and thus poorly served by
 * Flash Attention; Flash-Decoding is the follow-up optimization that
 * targets exactly that shape.
 */

#include <iostream>

#include "core/suite.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Ablation: Flash-Decoding on decode-shaped "
                 "workloads ===\n\n";

    core::CharacterizationSuite suite;
    TextTable table({"Model", "Baseline (s)", "Flash (s)",
                     "FlashDecode (s)", "Auto (s)", "Flash speedup",
                     "Best speedup"});
    for (models::ModelId id :
         {models::ModelId::LLaMA, models::ModelId::Parti,
          models::ModelId::Muse, models::ModelId::StableDiffusion}) {
        const graph::Pipeline p = models::buildModel(id);
        const double base =
            suite.profileOne(p, graph::AttentionBackend::Baseline)
                .totalSeconds;
        const double flash =
            suite.profileOne(p, graph::AttentionBackend::Flash)
                .totalSeconds;
        const double fd =
            suite.profileOne(p, graph::AttentionBackend::FlashDecode)
                .totalSeconds;
        const double autod =
            suite.profileOne(p, graph::AttentionBackend::Auto)
                .totalSeconds;
        table.addRow({p.name, formatFixed(base, 3),
                      formatFixed(flash, 3), formatFixed(fd, 3),
                      formatFixed(autod, 3),
                      formatFixed(base / flash, 2) + "x",
                      formatFixed(base / autod, 2) + "x"});
    }
    std::cout << table.render();
    std::cout << "\n(split-KV attention helps the autoregressive "
                 "decoders — Parti and the LLaMA\n decode phase — and "
                 "is neutral for prefill-shaped diffusion models)\n";
    return 0;
}
