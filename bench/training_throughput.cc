/**
 * @file
 * Training-side companion to Fig. 1: FSDP step time, MFU and
 * throughput for representative LLM vs TTI training jobs. Shows why
 * the 14x GPUs-per-parameter allocation of TTI jobs translates into a
 * different efficiency regime: small models on large pools pay
 * proportionally more for the FSDP collectives.
 */

#include <iostream>

#include "fleet/training_step.hh"
#include "models/model_suite.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Training throughput: LLM vs TTI under FSDP ===\n\n";

    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    const fleet::InterconnectSpec net =
        fleet::InterconnectSpec::a100Cluster();

    struct JobSpec
    {
        models::ModelId id;
        int worldSize;
        int microBatch;
    };
    // GPU pools scaled per the Fig. 1 fleet ratios.
    const std::vector<JobSpec> jobs = {
        {models::ModelId::LLaMA, 64, 4},
        {models::ModelId::StableDiffusion, 96, 8},
        {models::ModelId::Imagen, 256, 4},
        {models::ModelId::MakeAVideo, 256, 1},
    };

    TextTable table({"Model", "GPUs", "uBatch", "Step", "Exposed comm",
                     "MFU", "Samples/s"});
    for (const JobSpec& job : jobs) {
        const graph::Pipeline p = models::buildModel(job.id);
        fleet::TrainingStepInputs in;
        in.params = static_cast<double>(p.totalParams());
        in.forwardFlopsPerSample = fleet::forwardFlopsPerSample(p, gpu);
        in.microBatch = job.microBatch;
        in.worldSize = job.worldSize;
        const fleet::TrainingStepEstimate est =
            fleet::estimateTrainingStep(gpu, net, in);
        table.addRow({p.name, std::to_string(job.worldSize),
                      std::to_string(job.microBatch),
                      formatTime(est.stepSeconds),
                      formatTime(est.exposedCommSeconds),
                      formatPercent(est.mfu),
                      formatFixed(est.throughput, 1)});
    }
    std::cout << table.render();
    std::cout << "\n(diffusion training runs one UNet pass per sample "
                 "— no denoising loop — so its\n per-sample compute "
                 "is modest and FSDP collectives eat a larger share "
                 "of the step)\n";
    return 0;
}
