/**
 * @file
 * Timeline-overlap bench: what the event-timeline scheduler buys over
 * the seed's serialized accounting, per model.
 *
 * For every suite model (Flash backend, A100) the pipeline is lowered
 * once per lowering config and scheduled three ways:
 *
 *   default   — single stream, synchronous launches: bit-identical to
 *               the old summed profile, the baseline makespan
 *   overlap   — weight-stream splitting + a second (copy) stream +
 *               launch-queue depth 2: weight prefetch hides under
 *               compute and launch overhead hides under execution
 *   overlap+g — overlap plus CUDA-graph launch amortization for
 *               folded repeats (replays pay 10% of a launch)
 *
 * Emits `BENCH_timeline_overlap.json` (path overridable via argv[1])
 * with the three makespans and latency reductions per model. Exits
 * nonzero if enabling overlap ever *increases* any model's makespan —
 * the scheduler's overlap paths must be monotone improvements, so a
 * regression here is a scheduling bug, not a tuning issue.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exec/plan.hh"
#include "exec/schedule.hh"
#include "hw/gpu_spec.hh"
#include "kernels/cost_model.hh"
#include "models/model_suite.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace mmgen;

/** Relative slack so ulp-level noise never flips the gate. */
constexpr double kRelTol = 1e-9;

struct Row
{
    std::string model;
    double defaultSeconds = 0.0;
    double overlapSeconds = 0.0;
    double graphSeconds = 0.0;

    double overlapReduction() const
    {
        return 1.0 - overlapSeconds / defaultSeconds;
    }
    double graphReduction() const
    {
        return 1.0 - graphSeconds / defaultSeconds;
    }
};

} // namespace

int
main(int argc, char** argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_timeline_overlap.json";
    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    const kernels::CostModel model(gpu, graph::AttentionBackend::Flash,
                                   kernels::EfficiencyParams::defaults());

    exec::LoweringOptions plain_lower;
    exec::LoweringOptions split_lower;
    split_lower.splitWeightStreams = true;

    const exec::TimelineScheduler baseline(gpu, exec::ScheduleOptions{});

    exec::ScheduleOptions overlap_opts;
    overlap_opts.streams = 2;
    overlap_opts.launchQueueDepth = 2;
    const exec::TimelineScheduler overlap(gpu, overlap_opts);

    exec::ScheduleOptions graph_opts = overlap_opts;
    graph_opts.graphLaunch = true;
    graph_opts.graphReplayOverheadFraction = 0.1;
    const exec::TimelineScheduler graphed(gpu, graph_opts);

    std::vector<Row> rows;
    bool regressed = false;
    for (const models::ModelId id : models::allModels()) {
        const graph::Pipeline pipeline = models::buildModel(id);
        const exec::ExecutionPlan plain =
            exec::lowerPipeline(pipeline, model, plain_lower);
        const exec::ExecutionPlan split =
            exec::lowerPipeline(pipeline, model, split_lower);

        Row row;
        row.model = pipeline.name;
        row.defaultSeconds = baseline.schedule(plain).makespan;
        row.overlapSeconds = overlap.schedule(split).makespan;
        row.graphSeconds = graphed.schedule(split).makespan;
        if (row.overlapSeconds >
                row.defaultSeconds * (1.0 + kRelTol) ||
            row.graphSeconds > row.defaultSeconds * (1.0 + kRelTol)) {
            std::cerr << "REGRESSION: overlap slower than default for "
                      << row.model << " (default "
                      << row.defaultSeconds << "s, overlap "
                      << row.overlapSeconds << "s, overlap+graph "
                      << row.graphSeconds << "s)\n";
            regressed = true;
        }
        rows.push_back(row);
    }

    TextTable table({"Model", "Default", "Overlap", "Overlap+graph",
                     "Saved", "Saved+graph"});
    for (const Row& r : rows) {
        table.addRow({r.model, formatTime(r.defaultSeconds),
                      formatTime(r.overlapSeconds),
                      formatTime(r.graphSeconds),
                      formatPercent(r.overlapReduction()),
                      formatPercent(r.graphReduction())});
    }
    std::cout << "Timeline overlap on " << gpu.name
              << " (flash backend):\n\n"
              << table.render();

    std::ofstream out(out_path);
    out << "{\n  \"bench\": \"timeline_overlap\",\n  \"gpu\": \""
        << gpu.name << "\",\n  \"models\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"model\": \"" << r.model
            << "\", \"default_seconds\": " << formatFixed(
                   r.defaultSeconds, 9)
            << ", \"overlap_seconds\": " << formatFixed(
                   r.overlapSeconds, 9)
            << ", \"overlap_graph_seconds\": " << formatFixed(
                   r.graphSeconds, 9)
            << ", \"overlap_reduction\": " << formatFixed(
                   r.overlapReduction(), 6)
            << ", \"overlap_graph_reduction\": " << formatFixed(
                   r.graphReduction(), 6)
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"regressed\": "
        << (regressed ? "true" : "false") << "\n}\n";
    std::cout << "\nwrote " << out_path << "\n";

    if (regressed) {
        std::cerr << "\noverlap made at least one model slower; "
                     "failing\n";
        return 1;
    }
    return 0;
}
