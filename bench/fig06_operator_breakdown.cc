/**
 * @file
 * Reproduces paper Fig. 6: operator time breakdown across the TTI/TTV
 * model suite, with baseline attention (first bar) and Flash Attention
 * (second bar, normalized to the model's baseline total).
 *
 * Paper claims to check against:
 *  - Attention averages ~41% of baseline time across the TTI/TTV suite.
 *  - After Flash, Attention still takes 37-45% of LLaMA / transformer
 *    TTI time, but only 13-25% in diffusion models, where Convolution
 *    (up to 44%) becomes the largest operator block.
 *  - Pixel-based diffusion spends ~15% more time on convolution than
 *    latent-based diffusion.
 */

#include <iostream>

#include "core/reports.hh"
#include "core/suite.hh"
#include "util/format.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Fig. 6: operator time breakdown (baseline vs "
                 "Flash Attention) ===\n\n";

    core::CharacterizationSuite suite;
    const std::vector<core::ModelRunResult> results =
        suite.runAll(models::allModels());

    std::cout << core::operatorBreakdownTable(results).render() << "\n";

    // Headline statistics the paper quotes from this figure.
    double attn_frac_sum = 0.0;
    int tti_ttv = 0;
    double conv_pixel = 0.0, conv_latent = 0.0;
    int n_pixel = 0, n_latent = 0;
    for (const auto& r : results) {
        const graph::ModelClass klass = models::buildModel(r.id).klass;
        if (klass != graph::ModelClass::LLM) {
            attn_frac_sum += r.baselineAttentionFraction();
            ++tti_ttv;
        }
        const double conv = r.baseline.breakdown.categoryFraction(
            graph::OpCategory::Convolution);
        if (klass == graph::ModelClass::DiffusionPixel) {
            conv_pixel += conv;
            ++n_pixel;
        } else if (klass == graph::ModelClass::DiffusionLatent) {
            conv_latent += conv;
            ++n_latent;
        }
    }
    std::cout << "Mean baseline Attention share over TTI/TTV suite: "
              << formatPercent(attn_frac_sum / tti_ttv)
              << "  (paper: ~41.3%)\n";
    std::cout << "Baseline Convolution share, pixel diffusion:      "
              << formatPercent(conv_pixel / n_pixel) << "\n";
    std::cout << "Baseline Convolution share, latent diffusion:     "
              << formatPercent(conv_latent / n_latent)
              << "  (paper: pixel ~15 points higher)\n";
    return 0;
}
