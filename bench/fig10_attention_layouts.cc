/**
 * @file
 * Reproduces paper Fig. 10 (structural): how tensor dimensions are
 * rearranged between Spatial and Temporal attention, and what that
 * does to effective sequence length and memory layout.
 */

#include <iostream>

#include "cache/attention_study.hh"
#include "graph/op.hh"
#include "util/format.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Fig. 10: spatial vs temporal attention tensor "
                 "layouts ===\n\n";

    // A Make-A-Video-like video tensor: [B=1, C=512, F=16, H=16, W=16].
    const std::int64_t c = 512, f = 16, h = 16, w = 16, heads = 8;
    const std::int64_t hw = h * w;
    const std::int64_t head_dim = c / heads;

    graph::AttentionAttrs spatial;
    spatial.kind = graph::AttentionKind::SelfSpatial;
    spatial.batch = f;
    spatial.heads = heads;
    spatial.seqQ = spatial.seqKv = hw;
    spatial.headDim = head_dim;
    spatial.seqStrideElems = c;
    spatial.featureStrideElems = 1;

    graph::AttentionAttrs temporal;
    temporal.kind = graph::AttentionKind::Temporal;
    temporal.batch = hw;
    temporal.heads = heads;
    temporal.seqQ = temporal.seqKv = f;
    temporal.headDim = head_dim;
    temporal.seqStrideElems = hw;
    temporal.featureStrideElems = f * hw;

    auto describe = [&](const char* name,
                        const graph::AttentionAttrs& a) {
        std::cout << name << ":\n";
        std::cout << "  Q/K/V shape: [batch=" << a.batch << ", heads="
                  << a.heads << ", seq=" << a.seqQ << ", head_dim="
                  << a.headDim << "]\n";
        std::cout << "  effective sequence length = "
                  << (a.kind == graph::AttentionKind::Temporal
                          ? "number of frames"
                          : "image positions (H*W)")
                  << " = " << a.seqQ << "\n";
        std::cout << "  seq stride: " << a.seqStrideElems
                  << " elems, feature stride: " << a.featureStrideElems
                  << " elems\n";
        std::cout << "  DRAM over-fetch factor (32 B sectors, fp16): "
                  << formatFixed(a.strideWasteFactor(32, 2), 1)
                  << "x\n\n";
    };
    describe("Spatial attention (attends over H*W per frame)", spatial);
    describe("Temporal attention (attends over frames per position)",
             temporal);

    std::cout << "Sequence length is proportional to image size in "
                 "spatial attention\nand to the number of frames in "
                 "temporal attention (paper Fig. 10).\n";
    return 0;
}
