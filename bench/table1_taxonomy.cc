/**
 * @file
 * Reproduces paper Table I: taxonomy of the four Pareto-optimal TTI
 * models along the compute / memory / latency axes.
 *
 * Paper reference labels:
 *   Imagen:          Compute High,   Memory Medium, Latency High
 *   StableDiffusion: Compute Medium, Memory Low,    Latency High
 *   Muse:            Compute Low,    Memory Low,    Latency Low
 *   Parti:           Compute Low,    Memory High,   Latency Medium
 */

#include <iostream>

#include "core/taxonomy.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Table I: taxonomy of text-to-image models ===\n\n";

    core::CharacterizationSuite suite;
    const std::vector<models::ModelId> table1_models = {
        models::ModelId::Imagen,
        models::ModelId::StableDiffusion,
        models::ModelId::Muse,
        models::ModelId::Parti,
    };
    const std::vector<core::ModelRunResult> results =
        suite.runAll(table1_models);
    const std::vector<core::TaxonomyRow> rows =
        core::buildTaxonomy(results);
    std::cout << core::taxonomyTable(rows).render();

    std::cout << "\n(paper: Imagen High/Medium/High, "
                 "StableDiffusion Medium/Low/High, Muse Low/Low/Low, "
                 "Parti Low/High/Medium)\n";
    return 0;
}
