/**
 * @file
 * Quantifies the paper's Section II-B design statement: Temporal
 * Attention layers are inserted after Spatial Attention "since adding
 * an additional temporal dimension to the existing Attention call is
 * not feasible from a memory perspective". Compares joint
 * spatio-temporal attention against the factorized pair, and shows
 * the windowed-temporal extension that linearizes the Fig. 13 curve.
 */

#include <iostream>

#include "analytics/temporal_scaling.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Section II-B: joint vs factorized "
                 "spatio-temporal attention ===\n\n";

    const std::int64_t dim = 1280, hw = 1024; // 32x32 latents

    TextTable table({"Frames", "Joint S-matrix", "Factorized S-matrix",
                     "Memory ratio", "Joint FLOPs",
                     "Factorized FLOPs"});
    for (std::int64_t frames : {4, 8, 16, 32, 64}) {
        const double joint_b =
            analytics::jointSimilarityBytes(frames, hw);
        const double fact_b =
            analytics::factorizedSimilarityBytes(frames, hw);
        const double joint_f =
            analytics::jointSpatioTemporalFlops(frames, hw, dim);
        const double fact_f =
            analytics::spatialAttentionFlops(frames, hw, dim) +
            analytics::temporalAttentionFlops(frames, hw, dim);
        table.addRow({std::to_string(frames), formatBytes(joint_b),
                      formatBytes(fact_b),
                      formatFixed(joint_b / fact_b, 1) + "x",
                      formatFlops(joint_f), formatFlops(fact_f)});
    }
    std::cout << table.render() << "\n";

    std::cout << "Windowed temporal attention (window = 8) vs full, "
                 "32x32 latents:\n";
    TextTable wt({"Frames", "Full temporal", "Windowed",
                  "Reduction"});
    for (std::int64_t frames : {16, 64, 256, 1024}) {
        const double full =
            analytics::temporalAttentionFlops(frames, hw, dim);
        const double windowed =
            analytics::windowedTemporalFlops(frames, hw, dim, 8);
        wt.addRow({std::to_string(frames), formatFlops(full),
                   formatFlops(windowed),
                   formatFixed(full / windowed, 1) + "x"});
    }
    std::cout << wt.render();
    std::cout << "\n(the joint similarity matrix grows ~(F*HW)^2 — a "
                 "16-frame 32x32 clip already\n needs tens of GiB per "
                 "head — so TTV models factorize; windowing restores\n"
                 " linear scaling for movie-length generation)\n";
    return 0;
}
