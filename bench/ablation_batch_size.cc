/**
 * @file
 * Ablation: batch-size dependence of the transformer-TTI roofline
 * position. The paper notes transformer models are memory-bandwidth
 * bound "at low batch sizes" appropriate for TTI serving (Fig. 5);
 * this sweep shows batching amortizing the weight reads until decode
 * crosses into the compute-bound regime.
 */

#include <iostream>

#include "hw/roofline.hh"
#include "models/blocks.hh"
#include "profiler/engine.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace mmgen;

/** A Parti-style decoder emitting `tokens` tokens at batch size b. */
graph::Pipeline
decodePipeline(std::int64_t batch, std::int64_t tokens)
{
    models::TransformerConfig cfg;
    cfg.layers = 80;
    cfg.dim = 4096;
    cfg.heads = 32;
    cfg.causal = true;
    cfg.crossAttention = true;
    cfg.contextLen = 64;

    graph::Pipeline p;
    p.name = "decoder_b" + std::to_string(batch);
    p.klass = graph::ModelClass::TransformerTTI;
    graph::Stage s;
    s.name = "decode";
    s.iterations = tokens;
    s.perIterationShapes = true;
    s.emit = [cfg, batch](graph::GraphBuilder& b, std::int64_t iter) {
        models::transformerDecodeStep(b, cfg, batch, iter + 1);
    };
    p.stages.push_back(std::move(s));
    return p;
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: decode batch size vs roofline "
                 "position ===\n\n";

    const hw::Roofline roofline(hw::GpuSpec::a100_80gb(), DType::F16);
    profiler::Profiler prof;

    TextTable table({"Batch", "Latency / image", "Tokens/s",
                     "Arithmetic intensity", "Bound"});
    const std::int64_t tokens = 256; // shortened grid for the sweep
    for (std::int64_t batch : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
        const profiler::ProfileResult res =
            prof.profile(decodePipeline(batch, tokens));
        const double ai = res.modelArithmeticIntensity();
        table.addRow(
            {std::to_string(batch),
             formatTime(res.totalSeconds),
             formatCount(static_cast<double>(batch * tokens) /
                         res.totalSeconds),
             formatFixed(ai, 1),
             hw::boundKindName(roofline.classify(ai))});
    }
    std::cout << table.render();
    std::cout << "\n(paper Fig. 5: transformer TTI is memory-bound at "
                 "the low batch sizes\n appropriate for image "
                 "serving; batching buys throughput until the decode\n"
                 " crosses the ridge point at batch ~"
              << formatFixed(roofline.ridgePoint() / 2.0, 0) << ")\n";
    return 0;
}
