/**
 * @file
 * Cluster-resilience chaos study. Named chaos scenarios (replica
 * kills, domain degradation, straggler GPUs) run against a
 * multi-replica Stable Diffusion cluster twice per grid point: a bare
 * deployment (deadline only — a killed batch's requests are gone) and
 * a resilient one (adaptive routing, bounded retry, admission
 * control, circuit breakers,
 * hedged requests, checkpoint/restore). The invariant asserted here
 * is the PR's contract: the resilient stack achieves goodput >= bare
 * at every grid point, and on the long-TTV scenario — Make-A-Video
 * requests whose service time is minutes, the paper's headline
 * system pain — checkpoint/restore cuts wasted GPU-seconds by at
 * least 30% versus full-request retry.
 *
 * Emits `BENCH_serving_chaos.json` (path overridable via a non-flag
 * argument); `--smoke` runs a reduced grid for CI. Exits nonzero if
 * any invariant fails.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "models/model_suite.hh"
#include "runtime/parallel.hh"
#include "serving/cluster.hh"
#include "serving/telemetry_hooks.hh"
#include "telemetry/consistency.hh"
#include "telemetry/export.hh"
#include "telemetry/telemetry.hh"
#include "util/format.hh"
#include "util/json.hh"
#include "util/table.hh"

namespace {

struct GridPoint
{
    std::string scenario;
    double load = 0.0;
};

struct PointResult
{
    mmgen::serving::ClusterReport bare;
    mmgen::serving::ClusterReport resilient;
};

} // namespace

int
main(int argc, char** argv)
{
    using namespace mmgen;

    bool smoke = false;
    std::string out_path = "BENCH_serving_chaos.json";
    std::string metrics_path;
    std::string trace_path;
    double sample_interval = 5.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--smoke")
            smoke = true;
        else if (arg == "--metrics-out")
            metrics_path = next();
        else if (arg == "--trace-out")
            trace_path = next();
        else if (arg == "--sample-interval")
            sample_interval = std::stod(next());
        else
            out_path = arg;
    }

    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    const graph::Pipeline sd =
        models::buildModel(models::ModelId::StableDiffusion);
    const serving::LatencyModel latency =
        serving::profileLatencyModel(sd, gpu);

    std::cout << "=== Serving chaos: 4-replica StableDiffusion "
                 "cluster (2 GPUs/replica, 2 failure domains) ===\n\n";
    std::cout << "batch-1 latency " << formatTime(latency.baseSeconds)
              << (smoke ? "; smoke grid\n\n" : "\n\n");

    const int kReplicas = 4;
    const int kGpusPerReplica = 2;
    const double horizon = smoke ? 300.0 : 900.0;
    const double capacity =
        static_cast<double>(4) / latency.batchSeconds(4) *
        (kReplicas * kGpusPerReplica);

    auto makeCluster = [&](const GridPoint& pt) {
        serving::ClusterConfig c;
        c.arrivalRate = pt.load * capacity;
        c.maxBatch = 4;
        c.horizonSeconds = horizon;
        // Bare deployments spray round-robin; adaptive routing is
        // part of the resilience layer under study.
        c.router = serving::RouterPolicy::RoundRobin;
        c.replicas.clear();
        for (int r = 0; r < kReplicas; ++r)
            c.replicas.push_back(serving::ReplicaSpec{
                latency, kGpusPerReplica, r / 2});
        c.chaos = serving::namedChaosScenario(pt.scenario, kReplicas,
                                              horizon);
        c.resilience.deadline.deadlineSeconds =
            10.0 * latency.baseSeconds;
        return c;
    };

    // Memory-aware admission: the static liveness analyzer's batch
    // bound rides along with queue-length shedding, so the dispatcher
    // can never form a batch the GPU cannot hold.
    const serving::AdmissionPolicy memAdmission =
        serving::memoryAwareAdmission(sd, gpu, /*maxQueueLength=*/64);

    auto makeResilient = [&](serving::ClusterConfig c) {
        c.router = serving::RouterPolicy::LeastLoaded;
        c.resilience.retry.maxRetries = 3;
        c.resilience.retry.backoffBaseSeconds = 0.5;
        // Shed past the point where a queued request could still
        // meet its deadline, so retried work displaces nothing.
        c.resilience.admission = memAdmission;
        c.breaker.failureThreshold = 3;
        c.breaker.openSeconds = 30.0;
        c.probe.intervalSeconds = 2.0;
        c.hedge.delaySeconds =
            2.0 * serving::hedgeDelayForQuantile(latency, c.maxBatch,
                                                 1.0);
        c.checkpoint =
            serving::checkpointFromPipeline(sd, 10,
                                            0.002 *
                                                latency.baseSeconds);
        return c;
    };

    std::vector<GridPoint> grid;
    if (smoke) {
        grid = {{"kill-replica", 0.6}, {"straggle-gpu", 0.6}};
    } else {
        for (const char* scenario :
             {"kill-replica", "rolling-kill", "degrade-domain",
              "straggle-gpu"})
            for (double load : {0.5, 0.8})
                grid.push_back({scenario, load});
    }

    // Each grid point is an independent seeded simulation; the sweep
    // runs data-parallel with bit-identical reports at any --jobs
    // count.
    const std::vector<PointResult> results = runtime::parallelMap(
        static_cast<std::int64_t>(grid.size()),
        [&](std::int64_t i) {
            const GridPoint& pt = grid[static_cast<std::size_t>(i)];
            const serving::ClusterConfig bare = makeCluster(pt);
            return PointResult{
                serving::simulateCluster(bare),
                serving::simulateCluster(makeResilient(bare))};
        });

    TextTable table({"Scenario", "Load", "Goodput (bare)",
                     "Goodput (resilient)", "p95 (bare)",
                     "p95 (resilient)", "Hedges", "Breaker opens",
                     "Restored"});
    int dominated = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const serving::ServingReport& a = results[i].bare.serving;
        const serving::ServingReport& b =
            results[i].resilient.serving;
        if (b.goodput >= a.goodput)
            ++dominated;
        table.addRow({grid[i].scenario, formatFixed(grid[i].load, 1),
                      formatFixed(a.goodput, 2) + " req/s",
                      formatFixed(b.goodput, 2) + " req/s",
                      formatTime(a.p95Latency),
                      formatTime(b.p95Latency),
                      std::to_string(b.hedgesIssued),
                      std::to_string(b.breakerOpens),
                      formatTime(b.restoredGpuSeconds)});
    }
    std::cout << table.render() << "\n";
    std::cout << "resilient stack (adaptive routing + retry + "
                 "admission + breaker + hedge "
                 "+ checkpoint) achieved\n goodput >= bare at "
              << dominated << "/" << grid.size()
              << " chaos grid points\n\n";

    // OOM-safety gate: no resilient run may ever have dispatched a
    // batch above the static memory bound, under any chaos scenario.
    bool oomPass = true;
    std::int64_t maxDispatched = 0;
    for (const PointResult& r : results) {
        const serving::ServingReport& b = r.resilient.serving;
        maxDispatched = std::max(maxDispatched, b.maxBatchDispatched);
        if (b.maxBatchDispatched > memAdmission.memoryFeasibleBatch ||
            b.maxBatchDispatched > b.effectiveMaxBatch)
            oomPass = false;
    }
    std::cout << "memory-aware admission: max batch dispatched "
              << maxDispatched << " <= static feasible batch "
              << memAdmission.memoryFeasibleBatch
              << (oomPass ? "" : "  VIOLATED") << "\n\n";

    // -- telemetry identity gate + artifacts -----------------------
    // Re-run the first grid point's resilient config with full
    // telemetry (metrics, sampling, tracing). The instrumented report
    // must equal the uninstrumented one field-for-field, and the
    // sampled series must pass the P009 consistency check.
    bool telemetryPass = true;
    {
        const serving::ClusterConfig cfg =
            makeResilient(makeCluster(grid[0]));
        telemetry::MetricsRegistry registry;
        telemetry::TraceSink sink;
        telemetry::Telemetry tel;
        tel.metrics = &registry;
        tel.trace = &sink;
        tel.sampleIntervalSeconds = sample_interval;
        const serving::ClusterReport instrumented =
            serving::simulateCluster(cfg, &tel);

        if (!serving::reportsBitIdentical(
                instrumented.serving, results[0].resilient.serving)) {
            std::cerr << "FAIL: telemetry-enabled report differs "
                         "from the telemetry-free run\n";
            telemetryPass = false;
        }
        telemetry::SeriesExpectations expect;
        expect.horizonSeconds = cfg.horizonSeconds;
        expect.totalGpus = cfg.totalGpus();
        expect.arrived = instrumented.serving.arrived;
        expect.shed = instrumented.serving.shed;
        expect.inHorizonCompleted =
            instrumented.serving.completed -
            instrumented.serving.drainCompleted;
        expect.retries = instrumented.serving.retries;
        expect.hedgesIssued = instrumented.serving.hedgesIssued;
        const verify::DiagnosticReport check =
            telemetry::checkSeriesConsistency(registry, expect);
        if (check.hasErrors()) {
            std::cerr << check.render();
            telemetryPass = false;
        }
        std::cout << "telemetry identity gate ("
                  << grid[0].scenario << " @ load "
                  << formatFixed(grid[0].load, 1) << "): "
                  << (telemetryPass ? "reports identical, series "
                                      "consistent"
                                    : "FAILED")
                  << "\n\n";
        if (!metrics_path.empty()) {
            std::ofstream mout(metrics_path);
            if (mout) {
                telemetry::writeMetricsJsonLines(mout, registry);
                std::cout << "(wrote " << metrics_path << ")\n";
            }
        }
        if (!trace_path.empty()) {
            std::ofstream tout(trace_path);
            if (tout) {
                telemetry::writeChromeTrace(tout, sink);
                std::cout << "(wrote " << trace_path << ")\n";
            }
        }
    }

    // -- long-TTV checkpoint/restore study -------------------------
    // Make-A-Video requests run minutes; a mid-request kill without
    // checkpoints re-runs the whole request. Same fleet, same faults,
    // checkpointing off vs on.
    const graph::Pipeline ttv =
        models::buildModel(models::ModelId::MakeAVideo);
    const serving::LatencyModel ttvLatency =
        serving::profileLatencyModel(ttv, gpu);
    const double base = ttvLatency.baseSeconds;

    serving::ClusterConfig longCfg;
    longCfg.arrivalRate = 0.8 / base;
    longCfg.maxBatch = 1;
    longCfg.horizonSeconds = (smoke ? 12.0 : 30.0) * base;
    longCfg.router = serving::RouterPolicy::LeastLoaded;
    longCfg.replicas = {serving::ReplicaSpec{ttvLatency, 1, 0},
                        serving::ReplicaSpec{ttvLatency, 1, 1}};
    longCfg.chaos = serving::namedChaosScenario(
        "kill-replica", 2, longCfg.horizonSeconds);
    longCfg.resilience.faults.failureMtbfSeconds = 3.0 * base;
    longCfg.resilience.faults.failureMttrSeconds = 0.5 * base;
    longCfg.resilience.retry.maxRetries = 10;
    longCfg.resilience.retry.backoffBaseSeconds = 1.0;
    longCfg.resilience.admission =
        serving::memoryAwareAdmission(ttv, gpu);

    serving::ClusterConfig longCkpt = longCfg;
    longCkpt.checkpoint = serving::checkpointFromPipeline(
        ttv, /*everyIterations=*/5, /*costSeconds=*/0.002 * base);

    const serving::ClusterReport noCkpt =
        serving::simulateCluster(longCfg);
    const serving::ClusterReport withCkpt =
        serving::simulateCluster(longCkpt);
    const double wastedBare = noCkpt.serving.wastedGpuSeconds;
    const double wastedCkpt = withCkpt.serving.wastedGpuSeconds;
    const double reduction =
        wastedBare > 0.0 ? 1.0 - wastedCkpt / wastedBare : 0.0;

    std::cout << "=== Long-TTV checkpoint/restore (MakeAVideo, "
              << formatTime(base) << "/request, kill-replica + "
              << "MTBF " << formatTime(3.0 * base) << ") ===\n\n";
    TextTable ttvTable({"Config", "Completed", "Wasted GPU-s",
                        "Restored GPU-s", "Resumes", "Ckpt overhead"});
    ttvTable.addRow({"full retry",
                     std::to_string(noCkpt.serving.completed),
                     formatTime(wastedBare), formatTime(0.0), "0",
                     formatTime(0.0)});
    ttvTable.addRow(
        {"checkpoint/restore",
         std::to_string(withCkpt.serving.completed),
         formatTime(wastedCkpt),
         formatTime(withCkpt.serving.restoredGpuSeconds),
         std::to_string(withCkpt.serving.resumes),
         formatTime(withCkpt.serving.checkpointOverheadSeconds)});
    std::cout << ttvTable.render() << "\n";
    std::cout << "checkpointing cut wasted GPU-seconds by "
              << formatPercent(reduction) << " (target >= 30%)\n";

    const std::int64_t ttvBound =
        longCfg.resilience.admission.memoryFeasibleBatch;
    if (noCkpt.serving.maxBatchDispatched > ttvBound ||
        withCkpt.serving.maxBatchDispatched > ttvBound)
        oomPass = false;

    const bool gridPass =
        dominated == static_cast<int>(grid.size());
    const bool ckptPass = wastedBare > 0.0 && reduction >= 0.30 &&
                          withCkpt.serving.resumes > 0;

    std::ofstream out(out_path);
    if (out) {
        json::Writer w(out);
        w.beginObject();
        w.field("bench", "serving_chaos");
        w.field("smoke", smoke);
        w.key("grid").beginArray();
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const serving::ServingReport& a = results[i].bare.serving;
            const serving::ServingReport& b =
                results[i].resilient.serving;
            w.beginObject();
            w.field("scenario", grid[i].scenario);
            w.key("load").rawValue(formatFixed(grid[i].load, 2));
            w.key("goodput_bare").rawValue(formatFixed(a.goodput, 4));
            w.key("goodput_resilient")
                .rawValue(formatFixed(b.goodput, 4));
            w.key("p95_bare").rawValue(formatFixed(a.p95Latency, 3));
            w.key("p95_resilient")
                .rawValue(formatFixed(b.p95Latency, 3));
            w.field("hedges_issued", b.hedgesIssued);
            w.field("hedges_won", b.hedgesWon);
            w.field("breaker_opens", b.breakerOpens);
            w.key("restored_gpu_seconds")
                .rawValue(formatFixed(b.restoredGpuSeconds, 3));
            w.field("dominated", b.goodput >= a.goodput);
            w.endObject();
        }
        w.endArray();
        w.field("grid_dominated",
                static_cast<std::int64_t>(dominated));
        w.field("grid_points",
                static_cast<std::int64_t>(grid.size()));
        w.field("telemetry_identical", telemetryPass);
        w.field("memory_feasible_batch",
                memAdmission.memoryFeasibleBatch);
        w.field("max_batch_dispatched", maxDispatched);
        w.field("memory_admission_safe", oomPass);
        w.key("long_ttv").beginObject();
        w.field("model", "MakeAVideo");
        w.key("request_seconds").rawValue(formatFixed(base, 3));
        w.key("wasted_gpu_seconds_full_retry")
            .rawValue(formatFixed(wastedBare, 3));
        w.key("wasted_gpu_seconds_checkpoint")
            .rawValue(formatFixed(wastedCkpt, 3));
        w.key("restored_gpu_seconds")
            .rawValue(
                formatFixed(withCkpt.serving.restoredGpuSeconds, 3));
        w.key("checkpoint_overhead_seconds")
            .rawValue(formatFixed(
                withCkpt.serving.checkpointOverheadSeconds, 3));
        w.field("resumes", withCkpt.serving.resumes);
        w.key("wasted_reduction").rawValue(formatFixed(reduction, 4));
        w.endObject();
        w.field("pass",
                gridPass && ckptPass && telemetryPass && oomPass);
        w.endObject();
        out << "\n";
        std::cout << "(wrote " << out_path << ")\n";
    }

    if (!telemetryPass)
        return 1;
    if (!oomPass) {
        std::cerr << "FAIL: a dispatched batch exceeded the static "
                     "memory-feasibility bound\n";
        return 1;
    }
    if (!gridPass) {
        std::cerr << "FAIL: resilient stack lost goodput on "
                  << (grid.size() - static_cast<std::size_t>(
                                        dominated))
                  << " grid point(s)\n";
        return 1;
    }
    if (!ckptPass) {
        std::cerr << "FAIL: checkpoint/restore cut wasted work by "
                  << formatPercent(reduction)
                  << " (< 30% target) or never resumed\n";
        return 1;
    }
    return 0;
}
