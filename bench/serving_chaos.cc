/**
 * @file
 * Cluster-resilience chaos study. Named chaos scenarios (replica
 * kills, domain degradation, straggler GPUs) run against a
 * multi-replica Stable Diffusion cluster twice per grid point: a bare
 * deployment (deadline only — a killed batch's requests are gone) and
 * a resilient one (adaptive routing, bounded retry, admission
 * control, circuit breakers,
 * hedged requests, checkpoint/restore). The invariant asserted here
 * is the PR's contract: the resilient stack achieves goodput >= bare
 * at every grid point, and on the long-TTV scenario — Make-A-Video
 * requests whose service time is minutes, the paper's headline
 * system pain — checkpoint/restore cuts wasted GPU-seconds by at
 * least 30% versus full-request retry.
 *
 * Emits `BENCH_serving_chaos.json` (path overridable via a non-flag
 * argument); `--smoke` runs a reduced grid for CI. Exits nonzero if
 * any invariant fails.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "models/model_suite.hh"
#include "runtime/parallel.hh"
#include "serving/cluster.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

struct GridPoint
{
    std::string scenario;
    double load = 0.0;
};

struct PointResult
{
    mmgen::serving::ClusterReport bare;
    mmgen::serving::ClusterReport resilient;
};

} // namespace

int
main(int argc, char** argv)
{
    using namespace mmgen;

    bool smoke = false;
    std::string out_path = "BENCH_serving_chaos.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else
            out_path = arg;
    }

    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    const graph::Pipeline sd =
        models::buildModel(models::ModelId::StableDiffusion);
    const serving::LatencyModel latency =
        serving::profileLatencyModel(sd, gpu);

    std::cout << "=== Serving chaos: 4-replica StableDiffusion "
                 "cluster (2 GPUs/replica, 2 failure domains) ===\n\n";
    std::cout << "batch-1 latency " << formatTime(latency.baseSeconds)
              << (smoke ? "; smoke grid\n\n" : "\n\n");

    const int kReplicas = 4;
    const int kGpusPerReplica = 2;
    const double horizon = smoke ? 300.0 : 900.0;
    const double capacity =
        static_cast<double>(4) / latency.batchSeconds(4) *
        (kReplicas * kGpusPerReplica);

    auto makeCluster = [&](const GridPoint& pt) {
        serving::ClusterConfig c;
        c.arrivalRate = pt.load * capacity;
        c.maxBatch = 4;
        c.horizonSeconds = horizon;
        // Bare deployments spray round-robin; adaptive routing is
        // part of the resilience layer under study.
        c.router = serving::RouterPolicy::RoundRobin;
        c.replicas.clear();
        for (int r = 0; r < kReplicas; ++r)
            c.replicas.push_back(serving::ReplicaSpec{
                latency, kGpusPerReplica, r / 2});
        c.chaos = serving::namedChaosScenario(pt.scenario, kReplicas,
                                              horizon);
        c.resilience.deadline.deadlineSeconds =
            10.0 * latency.baseSeconds;
        return c;
    };

    auto makeResilient = [&](serving::ClusterConfig c) {
        c.router = serving::RouterPolicy::LeastLoaded;
        c.resilience.retry.maxRetries = 3;
        c.resilience.retry.backoffBaseSeconds = 0.5;
        // Shed past the point where a queued request could still
        // meet its deadline, so retried work displaces nothing.
        c.resilience.admission.maxQueueLength = 64;
        c.breaker.failureThreshold = 3;
        c.breaker.openSeconds = 30.0;
        c.probe.intervalSeconds = 2.0;
        c.hedge.delaySeconds =
            2.0 * serving::hedgeDelayForQuantile(latency, c.maxBatch,
                                                 1.0);
        c.checkpoint =
            serving::checkpointFromPipeline(sd, 10,
                                            0.002 *
                                                latency.baseSeconds);
        return c;
    };

    std::vector<GridPoint> grid;
    if (smoke) {
        grid = {{"kill-replica", 0.6}, {"straggle-gpu", 0.6}};
    } else {
        for (const char* scenario :
             {"kill-replica", "rolling-kill", "degrade-domain",
              "straggle-gpu"})
            for (double load : {0.5, 0.8})
                grid.push_back({scenario, load});
    }

    // Each grid point is an independent seeded simulation; the sweep
    // runs data-parallel with bit-identical reports at any --jobs
    // count.
    const std::vector<PointResult> results = runtime::parallelMap(
        static_cast<std::int64_t>(grid.size()),
        [&](std::int64_t i) {
            const GridPoint& pt = grid[static_cast<std::size_t>(i)];
            const serving::ClusterConfig bare = makeCluster(pt);
            return PointResult{
                serving::simulateCluster(bare),
                serving::simulateCluster(makeResilient(bare))};
        });

    TextTable table({"Scenario", "Load", "Goodput (bare)",
                     "Goodput (resilient)", "p95 (bare)",
                     "p95 (resilient)", "Hedges", "Breaker opens",
                     "Restored"});
    int dominated = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const serving::ServingReport& a = results[i].bare.serving;
        const serving::ServingReport& b =
            results[i].resilient.serving;
        if (b.goodput >= a.goodput)
            ++dominated;
        table.addRow({grid[i].scenario, formatFixed(grid[i].load, 1),
                      formatFixed(a.goodput, 2) + " req/s",
                      formatFixed(b.goodput, 2) + " req/s",
                      formatTime(a.p95Latency),
                      formatTime(b.p95Latency),
                      std::to_string(b.hedgesIssued),
                      std::to_string(b.breakerOpens),
                      formatTime(b.restoredGpuSeconds)});
    }
    std::cout << table.render() << "\n";
    std::cout << "resilient stack (adaptive routing + retry + "
                 "admission + breaker + hedge "
                 "+ checkpoint) achieved\n goodput >= bare at "
              << dominated << "/" << grid.size()
              << " chaos grid points\n\n";

    // -- long-TTV checkpoint/restore study -------------------------
    // Make-A-Video requests run minutes; a mid-request kill without
    // checkpoints re-runs the whole request. Same fleet, same faults,
    // checkpointing off vs on.
    const graph::Pipeline ttv =
        models::buildModel(models::ModelId::MakeAVideo);
    const serving::LatencyModel ttvLatency =
        serving::profileLatencyModel(ttv, gpu);
    const double base = ttvLatency.baseSeconds;

    serving::ClusterConfig longCfg;
    longCfg.arrivalRate = 0.8 / base;
    longCfg.maxBatch = 1;
    longCfg.horizonSeconds = (smoke ? 12.0 : 30.0) * base;
    longCfg.router = serving::RouterPolicy::LeastLoaded;
    longCfg.replicas = {serving::ReplicaSpec{ttvLatency, 1, 0},
                        serving::ReplicaSpec{ttvLatency, 1, 1}};
    longCfg.chaos = serving::namedChaosScenario(
        "kill-replica", 2, longCfg.horizonSeconds);
    longCfg.resilience.faults.failureMtbfSeconds = 3.0 * base;
    longCfg.resilience.faults.failureMttrSeconds = 0.5 * base;
    longCfg.resilience.retry.maxRetries = 10;
    longCfg.resilience.retry.backoffBaseSeconds = 1.0;

    serving::ClusterConfig longCkpt = longCfg;
    longCkpt.checkpoint = serving::checkpointFromPipeline(
        ttv, /*everyIterations=*/5, /*costSeconds=*/0.002 * base);

    const serving::ClusterReport noCkpt =
        serving::simulateCluster(longCfg);
    const serving::ClusterReport withCkpt =
        serving::simulateCluster(longCkpt);
    const double wastedBare = noCkpt.serving.wastedGpuSeconds;
    const double wastedCkpt = withCkpt.serving.wastedGpuSeconds;
    const double reduction =
        wastedBare > 0.0 ? 1.0 - wastedCkpt / wastedBare : 0.0;

    std::cout << "=== Long-TTV checkpoint/restore (MakeAVideo, "
              << formatTime(base) << "/request, kill-replica + "
              << "MTBF " << formatTime(3.0 * base) << ") ===\n\n";
    TextTable ttvTable({"Config", "Completed", "Wasted GPU-s",
                        "Restored GPU-s", "Resumes", "Ckpt overhead"});
    ttvTable.addRow({"full retry",
                     std::to_string(noCkpt.serving.completed),
                     formatTime(wastedBare), formatTime(0.0), "0",
                     formatTime(0.0)});
    ttvTable.addRow(
        {"checkpoint/restore",
         std::to_string(withCkpt.serving.completed),
         formatTime(wastedCkpt),
         formatTime(withCkpt.serving.restoredGpuSeconds),
         std::to_string(withCkpt.serving.resumes),
         formatTime(withCkpt.serving.checkpointOverheadSeconds)});
    std::cout << ttvTable.render() << "\n";
    std::cout << "checkpointing cut wasted GPU-seconds by "
              << formatPercent(reduction) << " (target >= 30%)\n";

    const bool gridPass =
        dominated == static_cast<int>(grid.size());
    const bool ckptPass = wastedBare > 0.0 && reduction >= 0.30 &&
                          withCkpt.serving.resumes > 0;

    std::ofstream out(out_path);
    if (out) {
        out << "{\n  \"bench\": \"serving_chaos\",\n";
        out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
        out << "  \"grid\": [\n";
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const serving::ServingReport& a = results[i].bare.serving;
            const serving::ServingReport& b =
                results[i].resilient.serving;
            out << "    {\"scenario\": \"" << grid[i].scenario
                << "\", \"load\": " << formatFixed(grid[i].load, 2)
                << ", \"goodput_bare\": " << formatFixed(a.goodput, 4)
                << ", \"goodput_resilient\": "
                << formatFixed(b.goodput, 4)
                << ", \"p95_bare\": " << formatFixed(a.p95Latency, 3)
                << ", \"p95_resilient\": "
                << formatFixed(b.p95Latency, 3)
                << ", \"hedges_issued\": " << b.hedgesIssued
                << ", \"hedges_won\": " << b.hedgesWon
                << ", \"breaker_opens\": " << b.breakerOpens
                << ", \"restored_gpu_seconds\": "
                << formatFixed(b.restoredGpuSeconds, 3)
                << ", \"dominated\": "
                << (b.goodput >= a.goodput ? "true" : "false") << "}"
                << (i + 1 < grid.size() ? "," : "") << "\n";
        }
        out << "  ],\n";
        out << "  \"grid_dominated\": " << dominated << ",\n";
        out << "  \"grid_points\": " << grid.size() << ",\n";
        out << "  \"long_ttv\": {\n";
        out << "    \"model\": \"MakeAVideo\",\n";
        out << "    \"request_seconds\": " << formatFixed(base, 3)
            << ",\n";
        out << "    \"wasted_gpu_seconds_full_retry\": "
            << formatFixed(wastedBare, 3) << ",\n";
        out << "    \"wasted_gpu_seconds_checkpoint\": "
            << formatFixed(wastedCkpt, 3) << ",\n";
        out << "    \"restored_gpu_seconds\": "
            << formatFixed(withCkpt.serving.restoredGpuSeconds, 3)
            << ",\n";
        out << "    \"checkpoint_overhead_seconds\": "
            << formatFixed(
                   withCkpt.serving.checkpointOverheadSeconds, 3)
            << ",\n";
        out << "    \"resumes\": " << withCkpt.serving.resumes
            << ",\n";
        out << "    \"wasted_reduction\": "
            << formatFixed(reduction, 4) << "\n";
        out << "  },\n";
        out << "  \"pass\": "
            << (gridPass && ckptPass ? "true" : "false") << "\n}\n";
        std::cout << "(wrote " << out_path << ")\n";
    }

    if (!gridPass) {
        std::cerr << "FAIL: resilient stack lost goodput on "
                  << (grid.size() - static_cast<std::size_t>(
                                        dominated))
                  << " grid point(s)\n";
        return 1;
    }
    if (!ckptPass) {
        std::cerr << "FAIL: checkpoint/restore cut wasted work by "
                  << formatPercent(reduction)
                  << " (< 30% target) or never resumed\n";
        return 1;
    }
    return 0;
}
