/**
 * @file
 * Runtime-scaling microbench: measures what the deterministic
 * parallel runtime (`src/runtime/`) buys the characterization
 * harness on a zoo-wide sweep, and proves the determinism contract.
 *
 * The workload mirrors what the figure drivers actually do: profile
 * every suite model under both attention backends, several sweep
 * passes over (the way `serving_capacity` / the figure benches
 * re-profile the same configurations). The serial baseline runs it
 * exactly like the pre-runtime harness: one thread, no memoization.
 * Each `--jobs N` point runs the same work through `parallelMap` +
 * `ProfileCache` from a cold cache.
 *
 * Emits `BENCH_runtime.json` (path overridable via argv[1]) with
 * wall-clock per job count, cache hit rates, speedups, and whether
 * the rendered sweep report was byte-identical to the serial one at
 * every job count. Exits nonzero if any output differs — determinism
 * is a hard invariant, not a goal.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/suite.hh"
#include "models/model_suite.hh"
#include "profiler/engine.hh"
#include "runtime/parallel.hh"
#include "runtime/profile_cache.hh"
#include "runtime/thread_pool.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace mmgen;

/** One unit of sweep work: profile one model under one backend. */
struct WorkItem
{
    models::ModelId id;
    graph::AttentionBackend backend;
};

std::vector<WorkItem>
buildSweep(int passes)
{
    std::vector<WorkItem> items;
    for (int pass = 0; pass < passes; ++pass) {
        for (models::ModelId id : models::allModels()) {
            items.push_back(
                {id, graph::AttentionBackend::Baseline});
            items.push_back({id, graph::AttentionBackend::Flash});
        }
    }
    return items;
}

profiler::ProfileOptions
optionsFor(const WorkItem& item)
{
    profiler::ProfileOptions opts;
    opts.backend = item.backend;
    return opts;
}

/** Render one sweep's results; byte-compared across job counts. */
std::string
renderReport(const std::vector<profiler::ProfileResult>& results)
{
    std::ostringstream oss;
    for (const profiler::ProfileResult& r : results) {
        oss << r.model << ","
            << graph::attentionBackendName(r.backend) << ","
            << formatFixed(r.totalSeconds * 1e3, 6) << ","
            << formatFixed(r.totalFlops, 0) << ","
            << formatFixed(r.totalHbmBytes, 0) << ","
            << r.totalLaunches << "\n";
    }
    return oss.str();
}

double
now_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

} // namespace

int
main(int argc, char** argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_runtime.json";
    constexpr int kPasses = 4;
    const std::vector<WorkItem> sweep = buildSweep(kPasses);
    const auto n = static_cast<std::int64_t>(sweep.size());

    std::cout << "=== Runtime scaling: zoo-wide sweep ("
              << sweep.size() << " profiles, " << kPasses
              << " passes over " << sweep.size() / kPasses
              << " configurations) ===\n\n";

    // Serial baseline: the pre-runtime harness. One thread, a fresh
    // Profiler per item, no cache.
    const double serial_start = now_seconds();
    std::vector<profiler::ProfileResult> serial_results;
    serial_results.reserve(sweep.size());
    for (const WorkItem& item : sweep) {
        serial_results.push_back(
            profiler::Profiler(optionsFor(item))
                .profile(models::buildModel(item.id)));
    }
    const double serial_s = now_seconds() - serial_start;
    const std::string serial_report = renderReport(serial_results);

    struct Point
    {
        int jobs = 1;
        double seconds = 0.0;
        double speedup = 0.0;
        std::int64_t hits = 0;
        std::int64_t misses = 0;
        double hitRate = 0.0;
        bool identical = false;
    };
    std::vector<Point> points;
    bool all_identical = true;

    for (const int jobs : {1, 2, 4, 8}) {
        runtime::ThreadPool::setGlobalJobs(jobs);
        // Fresh, private cache per point so hit rates and timings are
        // cold-start comparable.
        runtime::ProfileCache cache(256);
        const runtime::ProfileCacheStats before = cache.stats();

        const double start = now_seconds();
        const std::vector<profiler::ProfileResult> results =
            runtime::parallelMap(n, [&](std::int64_t i) {
                const WorkItem& item =
                    sweep[static_cast<std::size_t>(i)];
                const graph::Pipeline p =
                    models::buildModel(item.id);
                const profiler::ProfileOptions opts =
                    optionsFor(item);
                return *cache.getOrCompute(
                    runtime::profileKey(p, opts), [&] {
                        return profiler::Profiler(opts).profile(p);
                    });
            });
        const double seconds = now_seconds() - start;

        const runtime::ProfileCacheStats stats = cache.stats();
        Point pt;
        pt.jobs = jobs;
        pt.seconds = seconds;
        pt.speedup = seconds > 0.0 ? serial_s / seconds : 0.0;
        pt.hits = stats.hits - before.hits;
        pt.misses = stats.misses - before.misses;
        pt.hitRate = stats.hitRate();
        pt.identical = renderReport(results) == serial_report;
        all_identical = all_identical && pt.identical;
        points.push_back(pt);
    }
    runtime::ThreadPool::setGlobalJobs(0);

    TextTable table({"Jobs", "Wall", "Speedup", "Cache hits",
                     "Cache misses", "Hit rate", "Identical"});
    table.addRow({"serial", formatTime(serial_s), "1.00x", "-", "-",
                  "-", "-"});
    for (const Point& pt : points) {
        table.addRow({std::to_string(pt.jobs),
                      formatTime(pt.seconds),
                      formatFixed(pt.speedup, 2) + "x",
                      std::to_string(pt.hits),
                      std::to_string(pt.misses),
                      formatPercent(pt.hitRate),
                      pt.identical ? "yes" : "NO"});
    }
    std::cout << table.render() << "\n";
    std::cout
        << "(serial = pre-runtime harness: 1 thread, no memoization; "
           "each jobs point\n runs the identical sweep through "
           "parallelMap + a cold ProfileCache. The\n memo removes "
           "repeated-configuration work on any machine; extra jobs "
           "add\n thread-level speedup on multi-core hosts.)\n";

    std::ofstream out(out_path);
    if (out) {
        out << "{\n  \"bench\": \"runtime_scaling\",\n";
        out << "  \"work_items\": " << sweep.size() << ",\n";
        out << "  \"unique_configurations\": "
            << sweep.size() / kPasses << ",\n";
        out << "  \"serial_seconds\": "
            << formatFixed(serial_s, 6) << ",\n";
        out << "  \"points\": [\n";
        for (std::size_t i = 0; i < points.size(); ++i) {
            const Point& pt = points[i];
            out << "    {\"jobs\": " << pt.jobs
                << ", \"seconds\": " << formatFixed(pt.seconds, 6)
                << ", \"speedup\": " << formatFixed(pt.speedup, 3)
                << ", \"cache_hits\": " << pt.hits
                << ", \"cache_misses\": " << pt.misses
                << ", \"hit_rate\": " << formatFixed(pt.hitRate, 4)
                << ", \"identical_output\": "
                << (pt.identical ? "true" : "false") << "}"
                << (i + 1 < points.size() ? "," : "") << "\n";
        }
        out << "  ],\n";
        double best = 0.0;
        for (const Point& pt : points)
            best = pt.speedup > best ? pt.speedup : best;
        out << "  \"max_speedup\": " << formatFixed(best, 3)
            << ",\n";
        out << "  \"identical_at_all_jobs\": "
            << (all_identical ? "true" : "false") << "\n}\n";
        std::cout << "(wrote " << out_path << ")\n";
    }

    if (!all_identical) {
        std::cerr << "FAIL: sweep output not byte-identical across "
                     "job counts\n";
        return 1;
    }
    return 0;
}
