/**
 * @file
 * Evaluates the system optimization the paper proposes in Section V-A:
 * staggering denoising steps into "pods" so the cyclic bandwidth
 * demand of the UNet's sequence-length ladder is flattened and HBM
 * utilization stays high.
 */

#include <iostream>

#include "analytics/pod_scheduler.hh"
#include "models/stable_diffusion.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Section V-A proposal: staggered denoising pods "
                 "===\n\n";

    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    const graph::Pipeline sd = models::buildStableDiffusion();
    const std::vector<analytics::DemandSlice> demand =
        analytics::stageDemandProfile(sd, /*unet stage=*/1, gpu);

    double period = 0.0, bytes = 0.0;
    for (const auto& s : demand) {
        period += s.seconds;
        bytes += s.hbmBytes;
    }
    std::cout << "UNet fundamental period: " << formatTime(period)
              << ", " << formatBytes(bytes) << " moved over "
              << demand.size() << " ops\n\n";

    TextTable table({"Pods", "Schedule", "Peak BW", "Mean BW",
                     "Peak/avg", "Peak reduction"});
    for (int pods : {2, 3, 4}) {
        const analytics::PodSchedule in_phase =
            analytics::inPhaseSchedule(demand, pods);
        const analytics::PodSchedule staggered =
            analytics::schedulePods(demand, pods);
        table.addRow({std::to_string(pods), "in phase",
                      formatBytes(in_phase.peakBandwidth) + "/s",
                      formatBytes(in_phase.meanBandwidth) + "/s",
                      formatFixed(in_phase.peakToAverage(), 2), "-"});
        table.addRow(
            {std::to_string(pods), "staggered",
             formatBytes(staggered.peakBandwidth) + "/s",
             formatBytes(staggered.meanBandwidth) + "/s",
             formatFixed(staggered.peakToAverage(), 2),
             formatPercent(1.0 - staggered.peakBandwidth /
                                     in_phase.peakBandwidth)});
        table.addSeparator();
    }
    std::cout << table.render();
    std::cout << "\n(staggering phase-shifts the UNet's cyclic demand "
                 "so peaks of one stream\n fill valleys of another — "
                 "the \"pods\" opportunity of Section V-A)\n";
    return 0;
}
