/**
 * @file
 * Reproduces paper Fig. 7: sequence length profiled over the course of
 * inference for Stable Diffusion, Imagen, Muse, and Parti.
 *
 * Expected shapes:
 *  - Stable Diffusion / Imagen: cyclic U-shape from the UNet's
 *    downsampling/upsampling ladder (one fundamental period shown).
 *  - Muse: constant (parallel decoding processes the full grid).
 *  - Parti: linear ramp (each emitted token joins the KV context).
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <vector>

#include "core/suite.hh"
#include "util/csv.hh"
#include "util/format.hh"

namespace {

using namespace mmgen;

/** Print the first `limit` points of a model's attention-call series. */
void
printSeries(const core::CharacterizationSuite& suite, models::ModelId id,
            std::size_t limit)
{
    const graph::Pipeline p = models::buildModel(id);
    const profiler::ProfileResult res =
        suite.profileOne(p, graph::AttentionBackend::Flash);
    const std::vector<std::int64_t>& s = res.seqLens.series();
    std::cout << p.name << " (" << s.size()
              << " attention calls traced, min "
              << res.seqLens.minSeqLen() << ", max "
              << res.seqLens.maxSeqLen() << ")\n  ";
    const std::size_t n = std::min(limit, s.size());
    for (std::size_t i = 0; i < n; ++i)
        std::cout << s[i] << (i + 1 < n ? " " : "");
    if (s.size() > n)
        std::cout << " ...";
    std::cout << "\n\n";
}

/**
 * For the autoregressive Parti decode, show the self-attention KV
 * growth subsampled across decode steps.
 */
void
printPartiRamp(const core::CharacterizationSuite& suite)
{
    const profiler::ProfileResult res = suite.profileOne(
        models::buildModel(models::ModelId::Parti),
        graph::AttentionBackend::Flash);
    const std::vector<std::int64_t>& s = res.seqLens.series();
    std::cout << "Parti self-attention attended length (every 4096th "
                 "traced call):\n  ";
    for (std::size_t i = 0; i < s.size(); i += 4096)
        std::cout << s[i] << " ";
    std::cout << "... max " << res.seqLens.maxSeqLen()
              << " (linear ramp; seq_q stays 1 during decode)\n";
}

} // namespace

int
main(int argc, char** argv)
{
    std::cout << "=== Fig. 7: sequence length over the course of "
                 "inference ===\n\n";

    core::CharacterizationSuite suite;
    printSeries(suite, models::ModelId::StableDiffusion, 64);
    printSeries(suite, models::ModelId::Imagen, 64);
    printSeries(suite, models::ModelId::Muse, 80);
    printPartiRamp(suite);

    // Optional machine-readable dump: fig07 <out.csv> writes every
    // model's full per-call series.
    if (argc > 1) {
        std::ofstream csv_out(argv[1]);
        if (csv_out) {
            CsvWriter csv(csv_out);
            csv.writeRow({"model", "call_index", "sequence_length"});
            for (models::ModelId id :
                 {models::ModelId::StableDiffusion,
                  models::ModelId::Imagen, models::ModelId::Muse,
                  models::ModelId::Parti}) {
                const profiler::ProfileResult res = suite.profileOne(
                    models::buildModel(id),
                    graph::AttentionBackend::Flash);
                const auto& s = res.seqLens.series();
                for (std::size_t i = 0; i < s.size(); ++i) {
                    csv.writeRow({res.model, std::to_string(i),
                                  std::to_string(s[i])});
                }
            }
            std::cout << "(wrote " << argv[1] << ")\n";
        }
    }
    return 0;
}
