/**
 * @file
 * Telemetry overhead microbench: the zero-cost-when-disabled and
 * bounded-cost-when-enabled contract, measured.
 *
 * A chaos-heavy cluster simulation (breakers, hedges, rolling kills)
 * runs repeatedly with telemetry off and with full telemetry (metric
 * publication, per-interval sampling, span tracing). The bench
 * asserts, in order of importance:
 *
 *   1. Correctness: the instrumented report equals the bare report
 *      field-for-field (`==` on doubles — recording must not perturb
 *      the simulation).
 *   2. Determinism: serialized exports (metrics JSON-lines +
 *      Prometheus + Chrome trace) are byte-identical when the
 *      instrumented sweep runs under --jobs 1, 2, and 8.
 *   3. Cost: the enabled/disabled wall-clock ratio stays under
 *      `kMaxSlowdown`. Timing uses the min over repetitions, the
 *      standard estimator for noisy shared machines.
 *
 * Emits `BENCH_telemetry.json` (path overridable via a non-flag
 * argument); `--smoke` shrinks the horizon for CI. Exits nonzero on
 * any violated bound.
 */

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "models/model_suite.hh"
#include "runtime/parallel.hh"
#include "runtime/thread_pool.hh"
#include "serving/cluster.hh"
#include "serving/telemetry_hooks.hh"
#include "telemetry/export.hh"
#include "telemetry/telemetry.hh"
#include "util/format.hh"
#include "util/json.hh"
#include "util/table.hh"

namespace {

/** Enabled/disabled wall-clock ratio the bench tolerates. */
constexpr double kMaxSlowdown = 5.0;

double
secondsOf(const std::function<void()>& fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

/** Serialize every artifact of one instrumented run into a string. */
std::string
exportAll(const mmgen::telemetry::MetricsRegistry& registry,
          const mmgen::telemetry::TraceSink& sink)
{
    std::ostringstream out;
    mmgen::telemetry::writeMetricsJsonLines(out, registry);
    mmgen::telemetry::writePrometheus(out, registry);
    mmgen::telemetry::writeChromeTrace(out, sink);
    return out.str();
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace mmgen;

    bool smoke = false;
    std::string out_path = "BENCH_telemetry.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke")
            smoke = true;
        else
            out_path = arg;
    }

    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    const graph::Pipeline sd =
        models::buildModel(models::ModelId::StableDiffusion);
    const serving::LatencyModel latency =
        serving::profileLatencyModel(sd, gpu);

    const double horizon = smoke ? 300.0 : 1200.0;
    const int reps = smoke ? 3 : 5;
    const double sampleInterval = 1.0;

    serving::ClusterConfig cfg;
    cfg.maxBatch = 4;
    cfg.horizonSeconds = horizon;
    cfg.router = serving::RouterPolicy::LeastLoaded;
    cfg.replicas.clear();
    for (int r = 0; r < 3; ++r)
        cfg.replicas.push_back(serving::ReplicaSpec{latency, 2, r});
    cfg.arrivalRate = 0.8 * 4.0 / latency.batchSeconds(4) * 6.0;
    cfg.resilience.deadline.deadlineSeconds =
        10.0 * latency.baseSeconds;
    cfg.resilience.retry.maxRetries = 3;
    cfg.breaker.failureThreshold = 2;
    cfg.breaker.openSeconds = 15.0;
    cfg.hedge.delaySeconds =
        serving::hedgeDelayForQuantile(latency, cfg.maxBatch, 1.0);
    cfg.chaos = serving::namedChaosScenario("rolling-kill", 3, horizon);

    std::cout << "=== Telemetry overhead: 3-replica StableDiffusion "
                 "cluster, rolling-kill chaos, "
              << formatTime(horizon) << " horizon, " << reps
              << " reps ===\n\n";

    // -- timing: min over reps, telemetry off vs fully on ----------
    double bareSeconds = 1e300;
    serving::ClusterReport bareReport;
    for (int r = 0; r < reps; ++r) {
        const double s = secondsOf(
            [&] { bareReport = serving::simulateCluster(cfg); });
        bareSeconds = std::min(bareSeconds, s);
    }

    double instrumentedSeconds = 1e300;
    serving::ClusterReport instrumentedReport;
    std::int64_t traceEvents = 0;
    std::int64_t seriesPoints = 0;
    for (int r = 0; r < reps; ++r) {
        telemetry::MetricsRegistry registry;
        telemetry::TraceSink sink;
        telemetry::Telemetry tel;
        tel.metrics = &registry;
        tel.trace = &sink;
        tel.sampleIntervalSeconds = sampleInterval;
        const double s = secondsOf([&] {
            instrumentedReport = serving::simulateCluster(cfg, &tel);
        });
        instrumentedSeconds = std::min(instrumentedSeconds, s);
        traceEvents =
            static_cast<std::int64_t>(sink.events().size());
        seriesPoints = 0;
        for (const auto& [key, series] : registry.allSeries())
            seriesPoints +=
                static_cast<std::int64_t>(series.points().size());
    }

    const bool identical = serving::reportsBitIdentical(
        bareReport.serving, instrumentedReport.serving);
    const double slowdown = instrumentedSeconds / bareSeconds;
    const double eventsPerSecond =
        static_cast<double>(traceEvents + seriesPoints) /
        instrumentedSeconds;

    // -- determinism: exports byte-identical across --jobs ---------
    // Run the instrumented simulation as a parallel 3-point sweep at
    // several pool sizes; every serialized artifact must match.
    auto sweepExports = [&](int jobs) {
        runtime::ThreadPool::setGlobalJobs(jobs);
        const std::vector<std::string> parts = runtime::parallelMap(
            3, [&](std::int64_t i) {
                serving::ClusterConfig c = cfg;
                c.seed = cfg.seed + static_cast<std::uint64_t>(i);
                telemetry::MetricsRegistry registry;
                telemetry::TraceSink sink;
                telemetry::Telemetry tel;
                tel.metrics = &registry;
                tel.trace = &sink;
                tel.sampleIntervalSeconds = sampleInterval;
                serving::simulateCluster(c, &tel);
                return exportAll(registry, sink);
            });
        std::string all;
        for (const std::string& p : parts)
            all += p;
        return all;
    };
    const std::string exports1 = sweepExports(1);
    const std::string exports2 = sweepExports(2);
    const std::string exports8 = sweepExports(8);
    runtime::ThreadPool::setGlobalJobs(0);
    const bool exportsStable =
        exports1 == exports2 && exports1 == exports8;

    TextTable table({"Metric", "Value"});
    table.addRow({"bare run", formatTime(bareSeconds)});
    table.addRow({"instrumented run",
                  formatTime(instrumentedSeconds)});
    table.addRow({"slowdown", formatFixed(slowdown, 3) + "x (max " +
                                  formatFixed(kMaxSlowdown, 1) +
                                  "x)"});
    table.addRow({"trace events", std::to_string(traceEvents)});
    table.addRow({"series points", std::to_string(seriesPoints)});
    table.addRow({"telemetry events/s",
                  formatCount(eventsPerSecond)});
    table.addRow({"report identical", identical ? "yes" : "NO"});
    table.addRow({"exports stable over jobs 1/2/8",
                  exportsStable ? "yes" : "NO"});
    std::cout << table.render() << "\n";

    const bool pass =
        identical && exportsStable && slowdown <= kMaxSlowdown;

    std::ofstream out(out_path);
    if (out) {
        json::Writer w(out);
        w.beginObject();
        w.field("bench", "telemetry_overhead");
        w.field("smoke", smoke);
        w.key("bare_seconds").rawValue(formatFixed(bareSeconds, 6));
        w.key("instrumented_seconds")
            .rawValue(formatFixed(instrumentedSeconds, 6));
        w.key("slowdown").rawValue(formatFixed(slowdown, 4));
        w.key("max_slowdown").rawValue(formatFixed(kMaxSlowdown, 1));
        w.field("trace_events", traceEvents);
        w.field("series_points", seriesPoints);
        w.key("events_per_second")
            .rawValue(formatFixed(eventsPerSecond, 1));
        w.field("report_identical", identical);
        w.field("exports_stable_across_jobs", exportsStable);
        w.field("pass", pass);
        w.endObject();
        out << "\n";
        std::cout << "(wrote " << out_path << ")\n";
    }

    if (!identical) {
        std::cerr << "FAIL: instrumented report differs from the "
                     "bare report\n";
        return 1;
    }
    if (!exportsStable) {
        std::cerr << "FAIL: exports differ across --jobs values\n";
        return 1;
    }
    if (slowdown > kMaxSlowdown) {
        std::cerr << "FAIL: telemetry slowdown "
                  << formatFixed(slowdown, 3) << "x exceeds "
                  << formatFixed(kMaxSlowdown, 1) << "x\n";
        return 1;
    }
    return 0;
}
