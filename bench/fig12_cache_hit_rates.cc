/**
 * @file
 * Reproduces paper Fig. 12: L1 and L2 cache hit ratios for the GEMM,
 * softmax and elementwise kernels of Spatial versus Temporal
 * attention, via trace-driven cache simulation of Make-A-Video-shaped
 * attention calls.
 *
 * Expected: temporal attention shows ~10x lower L1 hit rates for GEMM
 * and softmax; GEMM L2 hit rate is also ~10x lower, while elementwise
 * and softmax L2 hit rates stay the same or higher.
 */

#include <iostream>

#include "cache/attention_study.hh"
#include "hw/gpu_spec.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;
    using kernels::KernelClass;

    std::cout << "=== Fig. 12: cache hit ratios, spatial vs temporal "
                 "attention (Make-A-Video shapes) ===\n\n";

    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();

    // Make-A-Video UNet attention site at the 16x16 level: C=1280,
    // F=16 frames.
    const std::int64_t c = 1280, f = 16, hw_pos = 256, heads = 8;
    const std::int64_t head_dim = c / heads;

    graph::AttentionAttrs spatial;
    spatial.kind = graph::AttentionKind::SelfSpatial;
    spatial.batch = f;
    spatial.heads = heads;
    spatial.seqQ = spatial.seqKv = hw_pos;
    spatial.headDim = head_dim;
    spatial.seqStrideElems = c;
    spatial.featureStrideElems = 1;

    graph::AttentionAttrs temporal;
    temporal.kind = graph::AttentionKind::Temporal;
    temporal.batch = hw_pos;
    temporal.heads = heads;
    temporal.seqQ = temporal.seqKv = f;
    temporal.headDim = head_dim;
    temporal.seqStrideElems = hw_pos;
    temporal.featureStrideElems = f * hw_pos;

    const cache::AttentionCacheReport sp =
        cache::runAttentionCacheStudy(gpu, spatial, DType::F16);
    const cache::AttentionCacheReport tp =
        cache::runAttentionCacheStudy(gpu, temporal, DType::F16);

    TextTable table({"Kernel", "L1 spatial", "L1 temporal",
                     "L1 ratio", "L2 spatial", "L2 temporal"});
    for (KernelClass k : {KernelClass::Gemm, KernelClass::Softmax,
                          KernelClass::Elementwise}) {
        const double l1s = sp.l1HitRate(k);
        const double l1t = tp.l1HitRate(k);
        std::string ratio;
        if (l1s < 0.005 && l1t < 0.005)
            ratio = "~equal";
        else if (l1t < 0.005)
            ratio = ">100x";
        else
            ratio = formatFixed(l1s / l1t, 1) + "x";
        table.addRow({kernels::kernelClassName(k), formatPercent(l1s),
                      formatPercent(l1t), ratio,
                      formatPercent(sp.l2HitRate(k)),
                      formatPercent(tp.l2HitRate(k))});
    }
    std::cout << table.render();
    std::cout << "\n(paper: temporal attention has ~10x lower L1 hit "
                 "rate for gemm and softmax;\n gemm L2 ~10x lower; "
                 "elementwise/softmax L2 same or higher)\n\n";

    // Extension: the same study under the Flash backend — no
    // similarity-matrix kernels at all, so the locality contrast
    // lives entirely in the fused GEMM-class kernel.
    const cache::AttentionCacheReport sp_flash =
        cache::runAttentionCacheStudy(gpu, spatial, DType::F16, 0,
                                      graph::AttentionBackend::Flash);
    const cache::AttentionCacheReport tp_flash =
        cache::runAttentionCacheStudy(gpu, temporal, DType::F16, 0,
                                      graph::AttentionBackend::Flash);
    std::cout << "Flash backend (fused kernel): no similarity-matrix "
                 "kernels at all;\n  spatial  L1 "
              << formatPercent(sp_flash.l1HitRate(KernelClass::Gemm))
              << ", L2 "
              << formatPercent(sp_flash.l2HitRate(KernelClass::Gemm))
              << " (K/V re-reads across query tiles land in L2)\n"
              << "  temporal L1 "
              << formatPercent(tp_flash.l1HitRate(KernelClass::Gemm))
              << ", L2 "
              << formatPercent(tp_flash.l2HitRate(KernelClass::Gemm))
              << " (only the strided view's sector sharing remains)\n";
    return 0;
}
