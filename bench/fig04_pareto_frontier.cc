/**
 * @file
 * Reproduces paper Fig. 4: the quality-vs-size Pareto frontier of TTI
 * models (published COCO FID against trainable parameters).
 *
 * Expected frontier membership includes Imagen (pixel diffusion),
 * Stable Diffusion (latent diffusion) and Parti (transformer, best
 * FID at 4x the parameters) — the architectural diversity that
 * motivates the paper's suite.
 */

#include <iostream>
#include <set>

#include "analytics/pareto.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Fig. 4: TTI quality vs size Pareto frontier ===\n\n";

    const auto& points = analytics::publishedTtiQualityPoints();
    const std::vector<std::size_t> front =
        analytics::paretoFront(points);
    const std::set<std::size_t> front_set(front.begin(), front.end());

    TextTable table(
        {"Model", "Family", "FID (COCO)", "Params (B)", "Pareto"});
    for (std::size_t i = 0; i < points.size(); ++i) {
        const auto& p = points[i];
        table.addRow({p.name, p.family, formatFixed(p.fid, 1),
                      formatFixed(p.paramsB, 2),
                      front_set.count(i) ? "optimal" : "-"});
    }
    std::cout << table.render() << "\n";

    std::cout << "Pareto-optimal frontier (by increasing FID):\n";
    for (std::size_t idx : front) {
        std::cout << "  " << points[idx].name << "  (fid "
                  << formatFixed(points[idx].fid, 1) << ", "
                  << formatFixed(points[idx].paramsB, 2) << "B params, "
                  << points[idx].family << ")\n";
    }
    return 0;
}
