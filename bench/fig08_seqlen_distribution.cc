/**
 * @file
 * Reproduces paper Fig. 8: frequency distribution of sequence lengths
 * over the course of Stable Diffusion inference, swept over output
 * image sizes 64..512.
 *
 * Expected: lengths fall in distinct buckets (powers of four apart);
 * the distribution shifts right as image size grows; at 512x512 the
 * bucket weights are roughly equal (the symmetric U of Fig. 7).
 */

#include <iostream>
#include <map>

#include "core/suite.hh"
#include "models/stable_diffusion.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Fig. 8: sequence length distribution vs image "
                 "size (Stable Diffusion) ===\n\n";

    const std::vector<std::int64_t> image_sizes = {64, 128, 256, 512};

    profiler::ProfileOptions opts;
    opts.keepOpRecords = true;
    const profiler::Profiler prof(opts);

    for (std::int64_t size : image_sizes) {
        models::StableDiffusionConfig cfg;
        cfg.imageSize = size;
        const profiler::ProfileResult res =
            prof.profile(models::buildStableDiffusion(cfg));

        // Attention time per bucket: the "tailor hardware towards
        // sequence lengths of interest" angle the paper raises.
        std::map<std::int64_t, double> seconds_by_len;
        double attn_seconds = 0.0;
        for (const auto& rec : res.records) {
            if (rec.kind != graph::OpKind::Attention ||
                rec.attnKind == graph::AttentionKind::CrossText) {
                continue;
            }
            seconds_by_len[rec.seqKv] += rec.seconds;
            attn_seconds += rec.seconds;
        }

        std::cout << "image " << size << "x" << size << " (latent "
                  << cfg.latentSize() << "):\n";
        for (const auto& [len, count] :
             res.seqLens.histogram().buckets()) {
            const double time_share =
                attn_seconds > 0.0
                    ? seconds_by_len[static_cast<std::int64_t>(len)] /
                          attn_seconds
                    : 0.0;
            std::cout << "  seq " << padLeft(formatFixed(len, 0), 6)
                      << " : "
                      << formatPercent(
                             res.seqLens.histogram().fraction(len))
                      << " of calls (" << count << "), "
                      << formatPercent(time_share)
                      << " of self-attention time\n";
        }
        std::cout << "\n";
    }
    std::cout << "(distribution shifts right with image size; buckets "
                 "stay discrete, and the\n largest bucket dominates "
                 "attention time — a target for bucket-tailored "
                 "hardware)\n";
    return 0;
}
