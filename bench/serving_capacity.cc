/**
 * @file
 * Serving-capacity study: how many requests/second can a pool of
 * simulated A100s serve for each TTI model family, and where does the
 * tail latency knee sit? Connects the per-request characterization to
 * the datacenter-scale framing of the paper's introduction.
 *
 * Every grid point builds its own serving setup — model, pool size,
 * offered rate — exactly the way a deployment planner iterates, so
 * each point calls `profileLatencyModel` afresh. The profile memo
 * (`runtime::ProfileCache`) makes every repeated setup O(1): the
 * sweep performs one real profile per model and the rest are cache
 * hits (counters printed at the end, and the bench fails if the hit
 * rate degrades below 90%). Grid points are independent seeded
 * simulations, so they run data-parallel via `parallelMap` with
 * byte-identical output at any `--jobs`/`MMGEN_JOBS` setting.
 */

#include <iostream>
#include <vector>

#include "models/model_suite.hh"
#include "runtime/parallel.hh"
#include "runtime/profile_cache.hh"
#include "serving/simulator.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace mmgen;

/** One (model, pool size, offered rate) serving setup. */
struct GridPoint
{
    models::ModelId id;
    int numGpus = 8;
    double rate = 0.0;
};

} // namespace

int
main()
{
    using namespace mmgen;

    std::cout << "=== Serving capacity on A100 pools (batch <= 4) "
                 "===\n\n";

    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    const std::vector<models::ModelId> model_ids = {
        models::ModelId::StableDiffusion, models::ModelId::Muse,
        models::ModelId::ProdImage};
    const std::vector<int> pool_sizes = {4, 8, 16};
    const std::vector<double> rates = {2.0, 8.0, 16.0, 24.0, 32.0};

    std::vector<GridPoint> grid;
    for (models::ModelId id : model_ids)
        for (int gpus : pool_sizes)
            for (double rate : rates)
                grid.push_back({id, gpus, rate});

    // Each point profiles its own latency model (one miss per model,
    // then hits) and runs one seeded simulation; parallelMap keeps
    // the results in grid order.
    const std::vector<serving::ServingReport> reports =
        runtime::parallelMap(
            static_cast<std::int64_t>(grid.size()),
            [&](std::int64_t i) {
                const GridPoint& pt =
                    grid[static_cast<std::size_t>(i)];
                const serving::LatencyModel latency =
                    serving::profileLatencyModel(
                        models::buildModel(pt.id), gpu);
                serving::ServingConfig cfg;
                cfg.arrivalRate = pt.rate;
                cfg.numGpus = pt.numGpus;
                cfg.maxBatch = 4;
                cfg.horizonSeconds = 300.0;
                return serving::simulateServing(cfg, latency);
            });

    std::size_t row = 0;
    for (models::ModelId id : model_ids) {
        const graph::Pipeline p = models::buildModel(id);
        const serving::LatencyModel latency =
            serving::profileLatencyModel(p, gpu);
        std::cout << p.name << " (batch-1 latency "
                  << formatTime(latency.baseSeconds) << "):\n";

        TextTable table({"GPUs", "Offered req/s", "Load", "p50",
                         "p95", "Mean batch", "GPU util",
                         "Backlog"});
        for (int gpus : pool_sizes) {
            for (double rate : rates) {
                const serving::ServingReport& r = reports[row++];
                table.addRow({std::to_string(gpus),
                              formatFixed(rate, 1),
                              formatFixed(r.offeredLoad, 2),
                              formatTime(r.p50Latency),
                              formatTime(r.p95Latency),
                              formatFixed(r.meanBatch, 2),
                              formatPercent(r.gpuUtilization),
                              std::to_string(r.backlog)});
            }
            table.addSeparator();
        }
        std::cout << table.render() << "\n";
    }
    std::cout << "(the p95 knee marks each model's serving capacity; "
                 "faster models buy\n proportionally more requests "
                 "per GPU — the paper's efficiency motivation)\n\n";

    // The same pool once the perfect-world assumption is dropped:
    // GPU failures shrink capacity, and the resilience policies
    // (retry + admission control) buy part of it back. The full
    // availability x load sweep lives in serving_resilience.
    std::cout << "=== StableDiffusion under GPU failures "
                 "(MTBF 10 min, MTTR 2 min) ===\n\n";
    const serving::LatencyModel sd = serving::profileLatencyModel(
        models::buildModel(models::ModelId::StableDiffusion), gpu);
    TextTable faulty({"Policies", "Avail", "Goodput", "p95",
                      "Retries", "Dropped"});
    for (bool resilient : {false, true}) {
        serving::ServingConfig cfg;
        cfg.arrivalRate = 16.0;
        cfg.numGpus = 8;
        cfg.maxBatch = 4;
        cfg.horizonSeconds = 300.0;
        serving::ResilienceConfig res;
        res.faults.failureMtbfSeconds = 600.0;
        res.faults.failureMttrSeconds = 120.0;
        if (resilient) {
            res.retry.maxRetries = 3;
            res.retry.backoffBaseSeconds = 0.5;
            res.admission.maxQueueLength = 64;
        }
        const serving::ServingReport r =
            serving::simulateServing(cfg, sd, res);
        faulty.addRow({resilient ? "retry+admission" : "none",
                       formatPercent(r.meanAvailability),
                       formatFixed(r.goodput, 2) + " req/s",
                       formatTime(r.p95Latency),
                       std::to_string(r.retries),
                       std::to_string(r.dropped)});
    }
    std::cout << faulty.render() << "\n";

    const runtime::ProfileCacheStats cache =
        runtime::ProfileCache::global().stats();
    std::cout << "ProfileCache: " << cache.hits << " hits / "
              << cache.misses << " misses ("
              << formatPercent(cache.hitRate()) << " hit rate, "
              << cache.entries << " entries, " << cache.evictions
              << " evictions)\n";
    if (cache.hitRate() < 0.9) {
        std::cerr << "FAIL: profile-cache hit rate below 90% on the "
                     "capacity sweep\n";
        return 1;
    }
    return 0;
}
