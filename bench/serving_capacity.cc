/**
 * @file
 * Serving-capacity study: how many requests/second can a pool of
 * simulated A100s serve for each TTI model family, and where does the
 * tail latency knee sit? Connects the per-request characterization to
 * the datacenter-scale framing of the paper's introduction.
 */

#include <iostream>

#include "models/model_suite.hh"
#include "serving/simulator.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Serving capacity on 8x A100 (batch <= 4) ===\n\n";

    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    for (models::ModelId id :
         {models::ModelId::StableDiffusion, models::ModelId::Muse,
          models::ModelId::ProdImage}) {
        const graph::Pipeline p = models::buildModel(id);
        const serving::LatencyModel latency =
            serving::profileLatencyModel(p, gpu);
        std::cout << p.name << " (batch-1 latency "
                  << formatTime(latency.baseSeconds) << "):\n";

        TextTable table({"Offered req/s", "Load", "p50", "p95",
                         "Mean batch", "GPU util", "Backlog"});
        for (double rate : {2.0, 8.0, 16.0, 24.0, 32.0}) {
            serving::ServingConfig cfg;
            cfg.arrivalRate = rate;
            cfg.numGpus = 8;
            cfg.maxBatch = 4;
            cfg.horizonSeconds = 300.0;
            const serving::ServingReport r =
                serving::simulateServing(cfg, latency);
            table.addRow({formatFixed(rate, 1),
                          formatFixed(r.offeredLoad, 2),
                          formatTime(r.p50Latency),
                          formatTime(r.p95Latency),
                          formatFixed(r.meanBatch, 2),
                          formatPercent(r.gpuUtilization),
                          std::to_string(r.backlog)});
        }
        std::cout << table.render() << "\n";
    }
    std::cout << "(the p95 knee marks each model's serving capacity; "
                 "faster models buy\n proportionally more requests "
                 "per GPU — the paper's efficiency motivation)\n";
    return 0;
}
