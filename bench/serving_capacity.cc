/**
 * @file
 * Serving-capacity study: how many requests/second can a pool of
 * simulated A100s serve for each TTI model family, and where does the
 * tail latency knee sit? Connects the per-request characterization to
 * the datacenter-scale framing of the paper's introduction.
 */

#include <iostream>

#include "models/model_suite.hh"
#include "serving/simulator.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Serving capacity on 8x A100 (batch <= 4) ===\n\n";

    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    for (models::ModelId id :
         {models::ModelId::StableDiffusion, models::ModelId::Muse,
          models::ModelId::ProdImage}) {
        const graph::Pipeline p = models::buildModel(id);
        const serving::LatencyModel latency =
            serving::profileLatencyModel(p, gpu);
        std::cout << p.name << " (batch-1 latency "
                  << formatTime(latency.baseSeconds) << "):\n";

        TextTable table({"Offered req/s", "Load", "p50", "p95",
                         "Mean batch", "GPU util", "Backlog"});
        for (double rate : {2.0, 8.0, 16.0, 24.0, 32.0}) {
            serving::ServingConfig cfg;
            cfg.arrivalRate = rate;
            cfg.numGpus = 8;
            cfg.maxBatch = 4;
            cfg.horizonSeconds = 300.0;
            const serving::ServingReport r =
                serving::simulateServing(cfg, latency);
            table.addRow({formatFixed(rate, 1),
                          formatFixed(r.offeredLoad, 2),
                          formatTime(r.p50Latency),
                          formatTime(r.p95Latency),
                          formatFixed(r.meanBatch, 2),
                          formatPercent(r.gpuUtilization),
                          std::to_string(r.backlog)});
        }
        std::cout << table.render() << "\n";
    }
    std::cout << "(the p95 knee marks each model's serving capacity; "
                 "faster models buy\n proportionally more requests "
                 "per GPU — the paper's efficiency motivation)\n\n";

    // The same pool once the perfect-world assumption is dropped:
    // GPU failures shrink capacity, and the resilience policies
    // (retry + admission control) buy part of it back. The full
    // availability x load sweep lives in serving_resilience.
    std::cout << "=== StableDiffusion under GPU failures "
                 "(MTBF 10 min, MTTR 2 min) ===\n\n";
    const serving::LatencyModel sd = serving::profileLatencyModel(
        models::buildModel(models::ModelId::StableDiffusion), gpu);
    TextTable faulty({"Policies", "Avail", "Goodput", "p95",
                      "Retries", "Dropped"});
    for (bool resilient : {false, true}) {
        serving::ServingConfig cfg;
        cfg.arrivalRate = 16.0;
        cfg.numGpus = 8;
        cfg.maxBatch = 4;
        cfg.horizonSeconds = 300.0;
        serving::ResilienceConfig res;
        res.faults.failureMtbfSeconds = 600.0;
        res.faults.failureMttrSeconds = 120.0;
        if (resilient) {
            res.retry.maxRetries = 3;
            res.retry.backoffBaseSeconds = 0.5;
            res.admission.maxQueueLength = 64;
        }
        const serving::ServingReport r =
            serving::simulateServing(cfg, sd, res);
        faulty.addRow({resilient ? "retry+admission" : "none",
                       formatPercent(r.meanAvailability),
                       formatFixed(r.goodput, 2) + " req/s",
                       formatTime(r.p95Latency),
                       std::to_string(r.retries),
                       std::to_string(r.dropped)});
    }
    std::cout << faulty.render();
    return 0;
}
