/**
 * @file
 * Reproduces paper Fig. 9: how Attention and Convolution execution
 * time scale with image size for the Stable Diffusion UNet, before
 * and after Flash Attention.
 *
 * Expected: with baseline attention, Attention time scales faster
 * than Convolution as the image grows (O(L^4) similarity traffic);
 * after Flash Attention, Convolution becomes the limiting operator at
 * large image sizes.
 */

#include <fstream>
#include <iostream>

#include "analytics/memory_model.hh"
#include "util/csv.hh"
#include "core/suite.hh"
#include "models/stable_diffusion.hh"
#include "runtime/parallel.hh"
#include "util/format.hh"
#include "util/table.hh"

namespace {

using namespace mmgen;

/** A pipeline containing only the SD denoising UNet. */
graph::Pipeline
unetOnly(const models::StableDiffusionConfig& cfg)
{
    graph::Pipeline p;
    p.name = "sd_unet";
    p.klass = graph::ModelClass::DiffusionLatent;
    graph::Stage s;
    s.name = "unet";
    s.iterations = cfg.denoiseSteps;
    const std::int64_t latent = cfg.latentSize();
    const models::UNetConfig unet = cfg.unet;
    s.emit = [unet, latent](graph::GraphBuilder& b, std::int64_t) {
        models::unetForward(b, unet, latent, latent);
    };
    p.stages.push_back(std::move(s));
    return p;
}

} // namespace

int
main(int argc, char** argv)
{
    std::cout << "=== Fig. 9: Attention vs Convolution scaling with "
                 "image size (SD UNet) ===\n\n";

    core::CharacterizationSuite suite;
    const std::vector<std::int64_t> image_sizes = {64, 128, 256, 512};

    TextTable table({"Image", "Backend", "Attention (ms)",
                     "Convolution (ms)", "Attn / Conv"});
    std::vector<double> sizes_d, base_attn, base_conv, flash_attn,
        flash_conv;

    // Profile the (image size x backend) sweep data-parallel; each
    // point is an independent deterministic profile and the results
    // come back in sweep order, so the rendered table is identical
    // at any --jobs count.
    struct SizeResult
    {
        double baseAttn = 0.0, baseConv = 0.0;
        double flashAttn = 0.0, flashConv = 0.0;
    };
    const std::vector<SizeResult> swept = runtime::parallelMap(
        static_cast<std::int64_t>(image_sizes.size()),
        [&](std::int64_t i) {
            models::StableDiffusionConfig cfg;
            cfg.imageSize = image_sizes[static_cast<std::size_t>(i)];
            const graph::Pipeline p = unetOnly(cfg);
            SizeResult r;
            for (graph::AttentionBackend backend :
                 {graph::AttentionBackend::Baseline,
                  graph::AttentionBackend::Flash}) {
                const profiler::ProfileResult res =
                    suite.profileOne(p, backend);
                const double attn = res.breakdown.categorySeconds(
                    graph::OpCategory::Attention);
                const double conv = res.breakdown.categorySeconds(
                    graph::OpCategory::Convolution);
                if (backend == graph::AttentionBackend::Baseline) {
                    r.baseAttn = attn;
                    r.baseConv = conv;
                } else {
                    r.flashAttn = attn;
                    r.flashConv = conv;
                }
            }
            return r;
        });

    for (std::size_t i = 0; i < image_sizes.size(); ++i) {
        const std::int64_t size = image_sizes[i];
        const SizeResult& r = swept[i];
        for (graph::AttentionBackend backend :
             {graph::AttentionBackend::Baseline,
              graph::AttentionBackend::Flash}) {
            const bool base =
                backend == graph::AttentionBackend::Baseline;
            const double attn = base ? r.baseAttn : r.flashAttn;
            const double conv = base ? r.baseConv : r.flashConv;
            table.addRow({std::to_string(size) + "x" +
                              std::to_string(size),
                          graph::attentionBackendName(backend),
                          formatFixed(attn * 1e3, 2),
                          formatFixed(conv * 1e3, 2),
                          formatFixed(attn / conv, 2)});
        }
        base_attn.push_back(r.baseAttn);
        base_conv.push_back(r.baseConv);
        flash_attn.push_back(r.flashAttn);
        flash_conv.push_back(r.flashConv);
        sizes_d.push_back(static_cast<double>(size));
        table.addSeparator();
    }
    std::cout << table.render() << "\n";

    // Optional machine-readable dump: fig09 <out.csv>.
    if (argc > 1) {
        std::ofstream csv_out(argv[1]);
        if (csv_out) {
            CsvWriter csv(csv_out);
            csv.writeRow({"image_size", "baseline_attention_s",
                          "flash_attention_s", "convolution_s"});
            for (std::size_t i = 0; i < sizes_d.size(); ++i) {
                csv.writeRow({formatFixed(sizes_d[i], 0),
                              formatFixed(base_attn[i], 6),
                              formatFixed(flash_attn[i], 6),
                              formatFixed(base_conv[i], 6)});
            }
            std::cout << "(wrote " << argv[1] << ")\n\n";
        }
    }

    std::cout << "Log-log scaling exponents vs image size:\n";
    std::cout << "  baseline attention:  "
              << formatFixed(
                     analytics::scalingExponent(sizes_d, base_attn), 2)
              << "\n";
    std::cout << "  flash attention:     "
              << formatFixed(
                     analytics::scalingExponent(sizes_d, flash_attn), 2)
              << "\n";
    std::cout << "  convolution:         "
              << formatFixed(
                     analytics::scalingExponent(sizes_d, base_conv), 2)
              << "\n\n";

    std::cout << "Per-doubling growth factors (time[i+1] / time[i]):\n";
    auto growth = [](const std::vector<double>& v, std::size_t i) {
        return v[i + 1] / v[i];
    };
    for (std::size_t i = 0; i + 1 < sizes_d.size(); ++i) {
        std::cout << "  " << sizes_d[i] << " -> " << sizes_d[i + 1]
                  << ": baseline attn "
                  << formatFixed(growth(base_attn, i), 2) << "x, flash "
                  << formatFixed(growth(flash_attn, i), 2) << "x, conv "
                  << formatFixed(growth(base_conv, i), 2) << "x\n";
    }
    std::cout << "(paper: before Flash, attention scales faster than "
                 "convolution; after Flash,\n convolution is the "
                 "limiting operator at large sizes)\n";
    return 0;
}
