/**
 * @file
 * Reproduces paper Fig. 13: FLOP count of Spatial versus Temporal
 * attention as the number of generated frames grows, at several
 * resolutions.
 *
 * Expected: spatial attention FLOPs grow linearly with frame count;
 * temporal attention FLOPs grow quadratically (frames are its
 * effective sequence length); the crossover point moves right as
 * resolution increases.
 */

#include <iostream>

#include "analytics/temporal_scaling.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Fig. 13: attention FLOPs vs number of frames ===\n\n";

    const std::int64_t dim = 1280;
    const std::vector<std::int64_t> frame_counts = {4,  8,   16,  32,
                                                    64, 128, 256, 512};
    const std::vector<std::int64_t> resolutions = {8, 16, 32};

    for (std::int64_t res : resolutions) {
        const std::int64_t hw = res * res;
        std::cout << "resolution " << res << "x" << res
                  << " (crossover at F = HW = "
                  << analytics::temporalCrossoverFrames(hw)
                  << " frames):\n";
        TextTable table({"Frames", "Spatial FLOPs", "Temporal FLOPs",
                         "Temporal / Spatial"});
        for (std::int64_t frames : frame_counts) {
            const double s =
                analytics::spatialAttentionFlops(frames, hw, dim);
            const double t =
                analytics::temporalAttentionFlops(frames, hw, dim);
            table.addRow({std::to_string(frames), formatFlops(s),
                          formatFlops(t), formatFixed(t / s, 3)});
        }
        std::cout << table.render() << "\n";
    }
    std::cout << "(spatial grows linearly in frames, temporal "
                 "quadratically; higher resolution\n pushes the "
                 "crossover to larger frame counts)\n";
    return 0;
}
