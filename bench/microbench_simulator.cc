/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself: cost-model
 * throughput, cache-simulation throughput, and full-pipeline profiling
 * latency. These guard the usability of the harness (the figure
 * benches re-profile models many times).
 */

#include <benchmark/benchmark.h>

#include "cache/attention_study.hh"
#include "kernels/cost_model.hh"
#include "models/model_suite.hh"
#include "profiler/engine.hh"
#include "runtime/profile_cache.hh"

namespace {

using namespace mmgen;

void
BM_CostModelAttention(benchmark::State& state)
{
    const kernels::CostModel model(hw::GpuSpec::a100_80gb(),
                                   graph::AttentionBackend::Baseline);
    graph::Op op;
    op.kind = graph::OpKind::Attention;
    graph::AttentionAttrs a;
    a.batch = 16;
    a.heads = 8;
    a.seqQ = a.seqKv = static_cast<std::int64_t>(state.range(0));
    a.headDim = 64;
    op.attrs = a;
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.time(op));
    }
}
BENCHMARK(BM_CostModelAttention)->Arg(256)->Arg(4096);

void
BM_ProfileStableDiffusion(benchmark::State& state)
{
    const graph::Pipeline p =
        models::buildModel(models::ModelId::StableDiffusion);
    profiler::Profiler prof;
    for (auto _ : state) {
        benchmark::DoNotOptimize(prof.profile(p));
    }
}
BENCHMARK(BM_ProfileStableDiffusion);

/**
 * The same repeated-profile workload through the profile memo: after
 * the first iteration every profile is an LRU hit, so this measures
 * the cache's fast path (fingerprint + key hash + lookup + copy-out).
 * Compare against BM_ProfileStableDiffusion for the cache-off cost.
 */
void
BM_ProfileStableDiffusionCached(benchmark::State& state)
{
    const graph::Pipeline p =
        models::buildModel(models::ModelId::StableDiffusion);
    const profiler::ProfileOptions opts;
    runtime::ProfileCache cache(16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            *cache.getOrCompute(runtime::profileKey(p, opts), [&] {
                return profiler::Profiler(opts).profile(p);
            }));
    }
    const runtime::ProfileCacheStats stats = cache.stats();
    state.counters["hit_rate"] = stats.hitRate();
}
BENCHMARK(BM_ProfileStableDiffusionCached);

/** Cost of the cache key itself: structural pipeline fingerprint. */
void
BM_PipelineFingerprint(benchmark::State& state)
{
    const graph::Pipeline p =
        models::buildModel(models::ModelId::StableDiffusion);
    for (auto _ : state) {
        benchmark::DoNotOptimize(p.fingerprint());
    }
}
BENCHMARK(BM_PipelineFingerprint);

void
BM_CacheSimSmallAttention(benchmark::State& state)
{
    graph::AttentionAttrs a;
    a.batch = 64;
    a.heads = 4;
    a.seqQ = a.seqKv = 64;
    a.headDim = 32;
    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache::runAttentionCacheStudy(gpu, a, DType::F16));
    }
}
BENCHMARK(BM_CacheSimSmallAttention);

} // namespace

BENCHMARK_MAIN();
