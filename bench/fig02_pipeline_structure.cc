/**
 * @file
 * Reproduces paper Fig. 2 (structural): the multi-component inference
 * pipelines of the suite. TTI/TTV models are several independently
 * trained components stitched together at inference time, unlike the
 * single-stack LLM.
 */

#include <iostream>

#include "models/model_suite.hh"
#include "util/format.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Fig. 2: inference pipeline structure ===\n\n";

    for (models::ModelId id : models::allModels()) {
        const graph::Pipeline p = models::buildModel(id);
        std::cout << p.name << "  [" << graph::modelClassName(p.klass)
                  << ", " << formatCount(double(p.totalParams()))
                  << " params]\n";
        for (std::size_t si = 0; si < p.stages.size(); ++si) {
            const graph::Stage& s = p.stages[si];
            const graph::Trace t = p.traceStage(si, 0);
            std::cout << "  -> " << padRight(s.name, 24) << " x"
                      << padLeft(std::to_string(s.iterations), 5)
                      << (s.perIterationShapes ? " (autoregressive)"
                                               : " (fixed shape)")
                      << "  " << t.size() << " ops/iter, "
                      << formatCount(double(t.totalParams()))
                      << " params\n";
        }
        std::cout << "\n";
    }
    return 0;
}
