/**
 * @file
 * Reproduces paper Table III: the prefill/decode correspondence of
 * TTI/TTV workloads.
 *
 * Diffusion models generate all pixels at once (block queries =>
 * prefill-like); autoregressive transformer TTI models emit one token
 * at a time (1xN queries => decode-like); parallel-decoding
 * transformers process full grids each refinement step (prefill-shaped
 * attention despite being transformers).
 */

#include <iostream>

#include "analytics/phase_classifier.hh"
#include "models/model_suite.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Table III: prefill/decode correspondence ===\n\n";

    TextTable table({"Model", "Class", "Block-query calls",
                     "Token-query calls", "Block fraction", "Verdict"});
    for (models::ModelId id : models::allModels()) {
        const graph::Pipeline p = models::buildModel(id);
        const analytics::PhaseProfile profile =
            analytics::classifyPipeline(p);
        table.addRow({p.name, graph::modelClassName(p.klass),
                      std::to_string(profile.blockQueryCalls),
                      std::to_string(profile.tokenQueryCalls),
                      formatPercent(profile.blockFraction()),
                      analytics::phaseKindName(profile.verdict())});
    }
    std::cout << table.render();
    std::cout
        << "\n(paper: diffusion models resemble Prefill — all pixels "
           "generated at once;\n autoregressive transformer TTI "
           "resembles Decode — tokens generated one by one)\n";
    return 0;
}
