/**
 * @file
 * Serving-resilience study: availability x load sweep of the
 * fault-tolerant simulator. For each point the no-policy fleet (same
 * faults, same deadline, no mitigation) is compared against the
 * resilient fleet (bounded retry + admission control + graceful
 * degradation, with the degraded-mode speedup profiled from a
 * half-step Stable Diffusion pipeline). The paper frames serving at
 * "100 million weekly users" scale; this closes the loop from its
 * per-request characterization to what operators actually tune when
 * fleets lose capacity (ServeGen, arXiv:2505.09999; Lee et al.,
 * arXiv:2410.00215).
 */

#include <iostream>
#include <vector>

#include "models/stable_diffusion.hh"
#include "runtime/parallel.hh"
#include "serving/simulator.hh"
#include "util/format.hh"
#include "util/table.hh"

int
main()
{
    using namespace mmgen;

    std::cout << "=== Serving resilience on 8x A100 "
                 "(StableDiffusion, batch <= 4) ===\n\n";

    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    const models::StableDiffusionConfig full_cfg;
    models::StableDiffusionConfig cheap_cfg = full_cfg;
    cheap_cfg.denoiseSteps = full_cfg.denoiseSteps / 2;
    const graph::Pipeline full =
        models::buildStableDiffusion(full_cfg);
    const serving::LatencyModel latency =
        serving::profileLatencyModel(full, gpu);
    serving::DegradationPolicy degradation =
        serving::degradationFromPipelines(
            full, models::buildStableDiffusion(cheap_cfg), gpu,
            /*qualityCost=*/0.5);
    degradation.queueThreshold = 16;

    std::cout << "batch-1 latency " << formatTime(latency.baseSeconds)
              << "; degraded mode (" << cheap_cfg.denoiseSteps
              << " of " << full_cfg.denoiseSteps
              << " denoising steps) scales service by "
              << formatFixed(degradation.serviceScale, 2) << "\n\n";

    serving::ServingConfig base;
    base.numGpus = 8;
    base.maxBatch = 4;
    base.horizonSeconds = 600.0;
    const double capacity =
        static_cast<double>(base.maxBatch) /
        latency.batchSeconds(base.maxBatch) * base.numGpus;
    const double deadline = 6.0 * latency.baseSeconds;

    TextTable table({"MTBF", "Avail", "Load", "Goodput (bare)",
                     "p95 (bare)", "Goodput (resilient)",
                     "p95 (resilient)", "Degraded", "Shed"});

    struct GridPoint
    {
        double mtbf = 0.0;
        double load = 0.0;
    };
    std::vector<GridPoint> grid;
    for (double mtbf : {0.0, 1800.0, 600.0, 200.0})
        for (double load : {0.5, 0.8, 1.1})
            grid.push_back({mtbf, load});

    // Every grid point is a pair of independent seeded simulations
    // (faults and arrivals draw from split Rng streams keyed by the
    // config, not by execution order), so the availability x load
    // sweep runs data-parallel with bit-identical reports at any
    // --jobs count; parallelMap returns them in grid order.
    struct PointResult
    {
        serving::ServingReport bare;
        serving::ServingReport resilient;
    };
    const std::vector<PointResult> results = runtime::parallelMap(
        static_cast<std::int64_t>(grid.size()),
        [&](std::int64_t i) {
            const GridPoint& pt = grid[static_cast<std::size_t>(i)];
            serving::ServingConfig cfg = base;
            cfg.arrivalRate = pt.load * capacity;

            serving::ResilienceConfig bare;
            bare.faults.failureMtbfSeconds = pt.mtbf;
            bare.faults.failureMttrSeconds = 120.0;
            bare.deadline.deadlineSeconds = deadline;

            serving::ResilienceConfig resilient = bare;
            resilient.retry.maxRetries = 3;
            resilient.retry.backoffBaseSeconds = 0.5;
            resilient.admission.maxQueueLength = 64;
            resilient.degradation = degradation;

            return PointResult{
                serving::simulateServing(cfg, latency, bare),
                serving::simulateServing(cfg, latency, resilient)};
        });

    int points = 0;
    int recovered = 0;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const GridPoint& pt = grid[i];
        const serving::ServingReport& a = results[i].bare;
        const serving::ServingReport& b = results[i].resilient;
        ++points;
        if (b.goodput >= a.goodput)
            ++recovered;
        table.addRow({pt.mtbf > 0.0 ? formatTime(pt.mtbf) : "none",
                      formatPercent(a.meanAvailability),
                      formatFixed(pt.load, 1),
                      formatFixed(a.goodput, 2) + " req/s",
                      formatTime(a.p95Latency),
                      formatFixed(b.goodput, 2) + " req/s",
                      formatTime(b.p95Latency),
                      formatPercent(b.degradedFraction),
                      formatPercent(b.shedFraction)});
    }
    std::cout << table.render() << "\n";
    std::cout << "retry + admission control + graceful degradation "
                 "recovered >= the\n no-policy goodput at "
              << recovered << "/" << points << " sweep points\n";
    std::cout << "(degradation trades " << formatPercent(0.5)
              << " of denoising steps for "
              << formatFixed(1.0 / degradation.serviceScale, 2)
              << "x service rate under pressure — the paper's "
                 "quality/latency lever)\n";
    return recovered == points ? 0 : 1;
}
