/**
 * @file
 * Hardware what-if analysis: re-run the paper's suite on different GPU
 * generations and see which findings are hardware-dependent. Because
 * mmgen's GPU is a parameterized model, the same workloads can be
 * replayed on V100-, A100- and H100-class devices — something the
 * paper's single-platform methodology could not do.
 */

#include <iostream>

#include "core/suite.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace mmgen;

int
main()
{
    std::cout << "=== What if the paper had used a different GPU? ===\n\n";

    const std::vector<hw::GpuSpec> gpus = {
        hw::GpuSpec::v100_32gb(),
        hw::GpuSpec::a100_80gb(),
        hw::GpuSpec::h100_80gb(),
    };
    const std::vector<models::ModelId> picks = {
        models::ModelId::StableDiffusion,
        models::ModelId::Muse,
        models::ModelId::MakeAVideo,
    };

    TextTable table({"GPU", "Model", "Latency (flash)",
                     "Flash speedup", "Attn % (baseline)"});
    for (const hw::GpuSpec& gpu : gpus) {
        core::CharacterizationSuite suite(gpu);
        for (models::ModelId id : picks) {
            const core::ModelRunResult r = suite.run(id);
            table.addRow({gpu.name, r.flash.model,
                          formatTime(r.flash.totalSeconds),
                          formatFixed(r.endToEndSpeedup(), 2) + "x",
                          formatPercent(r.baselineAttentionFraction())});
        }
        table.addSeparator();
    }
    std::cout << table.render() << "\n";

    std::cout
        << "Observations:\n"
        << "  - The paper's qualitative findings (diffusion gains most "
           "from Flash, the\n"
        << "    transformer TTI and TTV models barely move) hold "
           "across generations.\n"
        << "  - H100's compute grows faster than its bandwidth, so the "
           "memory-bound\n"
        << "    baseline attention hurts relatively more and the Flash "
           "win widens —\n"
        << "    eliminating similarity-matrix traffic keeps paying off "
           "on new hardware.\n";
    return 0;
}
