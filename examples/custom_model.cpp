/**
 * @file
 * Characterize your own architecture with the public API.
 *
 * This example designs a hypothetical latent-diffusion TTI model (a
 * "Stable Diffusion XL-flavored" variant at 1024x1024 output), builds
 * its pipeline from the reusable blocks, and answers the questions the
 * paper's methodology asks of any new model:
 *   - where does the time go (operator breakdown)?
 *   - how much does Flash Attention help, and why (Amdahl)?
 *   - where does it sit on the roofline?
 *   - how do its sequence lengths behave over inference?
 */

#include <iostream>

#include "analytics/amdahl.hh"
#include "core/reports.hh"
#include "core/suite.hh"
#include "models/blocks.hh"
#include "util/format.hh"

using namespace mmgen;

namespace {

/** A bigger latent UNet at 128x128 latent (1024 output, f=8). */
graph::Pipeline
buildCustomXl()
{
    graph::Pipeline p;
    p.name = "CustomXL";
    p.klass = graph::ModelClass::DiffusionLatent;

    // Two text encoders, as XL-class models use.
    models::TextEncoderConfig clip_small{12, 768, 12, 77, 49408};
    models::TextEncoderConfig clip_big{32, 1280, 20, 77, 49408};

    models::UNetConfig unet;
    unet.inChannels = 4;
    unet.baseChannels = 320;
    unet.channelMult = {1, 2, 4};
    unet.numResBlocks = 2;
    // XL-style: attention only at the two deeper levels.
    unet.attnDownFactors = {2, 4};
    unet.crossAttnDownFactors = {2, 4};
    unet.attnHeads = 10;
    unet.textLen = 77;
    unet.embedDim = 1280;

    models::ImageDecoderConfig vae;
    vae.latentChannels = 4;
    vae.baseChannels = 128;
    vae.channelMult = {1, 2, 4, 4};

    graph::Stage text;
    text.name = "text_encoders";
    text.iterations = 1;
    text.emit = [clip_small, clip_big](graph::GraphBuilder& b,
                                       std::int64_t) {
        models::textEncoder(b, clip_small);
        models::textEncoder(b, clip_big);
    };
    p.stages.push_back(std::move(text));

    graph::Stage denoise;
    denoise.name = "unet";
    denoise.iterations = 40;
    denoise.emit = [unet](graph::GraphBuilder& b, std::int64_t) {
        models::unetForward(b, unet, 128, 128);
    };
    p.stages.push_back(std::move(denoise));

    graph::Stage decode;
    decode.name = "vae_decoder";
    decode.iterations = 1;
    decode.emit = [vae](graph::GraphBuilder& b, std::int64_t) {
        models::imageDecoder(b, vae, 1, 128, 128);
    };
    p.stages.push_back(std::move(decode));
    return p;
}

} // namespace

int
main()
{
    const graph::Pipeline custom = buildCustomXl();
    core::CharacterizationSuite suite;

    const profiler::ProfileResult baseline = suite.profileOne(
        custom, graph::AttentionBackend::Baseline);
    const profiler::ProfileResult flash =
        suite.profileOne(custom, graph::AttentionBackend::Flash);

    std::cout << "=== Characterizing a custom XL-class TTI model ===\n\n";
    std::cout << core::profileSummary(flash) << "\n";

    const double f = baseline.breakdown.categoryFraction(
        graph::OpCategory::Attention);
    const double module_speedup =
        baseline.attentionSeconds() / flash.attentionSeconds();
    const double e2e = baseline.totalSeconds / flash.totalSeconds;
    std::cout << "Flash Attention analysis (Amdahl):\n";
    std::cout << "  baseline attention share: " << formatPercent(f)
              << "\n";
    std::cout << "  attention module speedup: "
              << formatFixed(module_speedup, 2) << "x\n";
    std::cout << "  predicted end-to-end:     "
              << formatFixed(
                     analytics::amdahlSpeedup(f, module_speedup), 2)
              << "x\n";
    std::cout << "  measured end-to-end:      " << formatFixed(e2e, 2)
              << "x  (ceiling "
              << formatFixed(analytics::amdahlCeiling(f), 2) << "x)\n\n";

    const hw::Roofline roofline(suite.gpu(), DType::F16);
    const double ai = flash.modelArithmeticIntensity();
    std::cout << "Roofline: arithmetic intensity "
              << formatFixed(ai, 1) << " FLOP/byte -> "
              << hw::boundKindName(roofline.classify(ai)) << "-bound\n";
    std::cout << "Sequence lengths over one denoising step: "
              << flash.seqLens.minSeqLen() << " .. "
              << flash.seqLens.maxSeqLen() << " ("
              << flash.seqLens.histogram().distinctValues()
              << " distinct buckets)\n";
    return 0;
}
