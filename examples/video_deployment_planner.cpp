/**
 * @file
 * Plan a text-to-video deployment: sweep frame counts and resolutions
 * to find where temporal attention becomes the dominant cost — the
 * forward-looking question of the paper's Section VI ("movies will
 * require significantly more unique frames").
 */

#include <iostream>

#include "analytics/temporal_scaling.hh"
#include "core/suite.hh"
#include "models/make_a_video.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace mmgen;

int
main()
{
    std::cout << "=== Text-to-video deployment planning ===\n\n";

    core::CharacterizationSuite suite;

    // 1. Sweep the clip length of a Make-A-Video-style generator and
    //    watch the temporal attention share grow.
    TextTable table({"Frames", "Latency", "Temporal attn",
                     "Spatial attn", "Temporal share of attn"});
    for (std::int64_t frames : {8, 16, 32, 64}) {
        models::MakeAVideoConfig cfg;
        cfg.base.frames = frames;
        cfg.interp = cfg.base;
        cfg.interp.baseChannels = 192;
        cfg.interp.frames = frames * 2;
        cfg.sr.batch = frames * 2;

        const profiler::ProfileResult res = suite.profileOne(
            models::buildMakeAVideo(cfg),
            graph::AttentionBackend::Flash);
        const auto temporal = res.attention.entryFor(
            graph::AttentionKind::Temporal);
        const auto spatial = res.attention.entryFor(
            graph::AttentionKind::SelfSpatial);
        table.addRow(
            {std::to_string(frames), formatTime(res.totalSeconds),
             formatTime(temporal.seconds), formatTime(spatial.seconds),
             formatPercent(temporal.seconds /
                           (temporal.seconds + spatial.seconds))});
    }
    std::cout << table.render() << "\n";

    // 2. Where is the FLOP crossover for a movie-length generation?
    std::cout << "Attention FLOP crossover (temporal overtakes "
                 "spatial):\n";
    for (std::int64_t res : {16, 32, 64}) {
        const std::int64_t hw = res * res;
        const std::int64_t cross =
            analytics::temporalCrossoverFrames(hw);
        std::cout << "  " << res << "x" << res << " latents: " << cross
                  << " frames (~"
                  << formatFixed(double(cross) / 24.0, 1)
                  << " s of 24 fps video)\n";
    }
    std::cout << "\nHigher resolution delays the crossover, but movie-"
                 "length clips cross it\nat every resolution — temporal "
                 "attention is the scaling bottleneck (Sec. VI).\n";
    return 0;
}
