/**
 * @file
 * Plan a text-to-video deployment: sweep frame counts and resolutions
 * to find where temporal attention becomes the dominant cost — the
 * forward-looking question of the paper's Section VI ("movies will
 * require significantly more unique frames").
 */

#include <iostream>

#include "analytics/temporal_scaling.hh"
#include "core/suite.hh"
#include "models/make_a_video.hh"
#include "serving/simulator.hh"
#include "util/format.hh"
#include "util/table.hh"

using namespace mmgen;

int
main()
{
    std::cout << "=== Text-to-video deployment planning ===\n\n";

    core::CharacterizationSuite suite;

    // 1. Sweep the clip length of a Make-A-Video-style generator and
    //    watch the temporal attention share grow.
    TextTable table({"Frames", "Latency", "Temporal attn",
                     "Spatial attn", "Temporal share of attn"});
    for (std::int64_t frames : {8, 16, 32, 64}) {
        models::MakeAVideoConfig cfg;
        cfg.base.frames = frames;
        cfg.interp = cfg.base;
        cfg.interp.baseChannels = 192;
        cfg.interp.frames = frames * 2;
        cfg.sr.batch = frames * 2;

        const profiler::ProfileResult res = suite.profileOne(
            models::buildMakeAVideo(cfg),
            graph::AttentionBackend::Flash);
        const auto temporal = res.attention.entryFor(
            graph::AttentionKind::Temporal);
        const auto spatial = res.attention.entryFor(
            graph::AttentionKind::SelfSpatial);
        table.addRow(
            {std::to_string(frames), formatTime(res.totalSeconds),
             formatTime(temporal.seconds), formatTime(spatial.seconds),
             formatPercent(temporal.seconds /
                           (temporal.seconds + spatial.seconds))});
    }
    std::cout << table.render() << "\n";

    // 2. Where is the FLOP crossover for a movie-length generation?
    std::cout << "Attention FLOP crossover (temporal overtakes "
                 "spatial):\n";
    for (std::int64_t res : {16, 32, 64}) {
        const std::int64_t hw = res * res;
        const std::int64_t cross =
            analytics::temporalCrossoverFrames(hw);
        std::cout << "  " << res << "x" << res << " latents: " << cross
                  << " frames (~"
                  << formatFixed(double(cross) / 24.0, 1)
                  << " s of 24 fps video)\n";
    }
    std::cout << "\nHigher resolution delays the crossover, but movie-"
                 "length clips cross it\nat every resolution — temporal "
                 "attention is the scaling bottleneck (Sec. VI).\n\n";

    // 3. Serving the clip generator on a real (imperfect) fleet: GPUs
    //    fail, and under pressure the operator's lever is quality —
    //    halving the denoising steps of every cascade stage. The
    //    degraded-mode speedup is profiled, not assumed.
    std::cout << "=== Serving 16-frame clips on 16 faulty A100s "
                 "(MTBF 20 min) ===\n\n";
    const hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    const models::MakeAVideoConfig full_cfg;
    models::MakeAVideoConfig cheap_cfg = full_cfg;
    cheap_cfg.baseSteps = full_cfg.baseSteps / 2;
    cheap_cfg.interpSteps = full_cfg.interpSteps / 2;
    cheap_cfg.srSteps = full_cfg.srSteps / 2;
    const graph::Pipeline video = models::buildMakeAVideo(full_cfg);
    const serving::LatencyModel latency =
        serving::profileLatencyModel(video, gpu);
    serving::DegradationPolicy degradation =
        serving::degradationFromPipelines(
            video, models::buildMakeAVideo(cheap_cfg), gpu,
            /*qualityCost=*/0.5);
    degradation.queueThreshold = 16;

    serving::ServingConfig scfg;
    scfg.numGpus = 16;
    scfg.maxBatch = 2;
    scfg.horizonSeconds = 3600.0;
    scfg.arrivalRate = 0.9 * scfg.numGpus * 2.0 /
                       latency.batchSeconds(2); // 90% of capacity

    TextTable serveTable({"Policies", "Avail", "Goodput", "p95",
                          "Degraded", "Dropped"});
    for (bool resilient : {false, true}) {
        serving::ResilienceConfig res;
        res.faults.failureMtbfSeconds = 1200.0;
        res.faults.failureMttrSeconds = 180.0;
        res.deadline.deadlineSeconds = 6.0 * latency.baseSeconds;
        if (resilient) {
            res.retry.maxRetries = 3;
            res.retry.backoffBaseSeconds = 1.0;
            res.admission.maxQueueLength = 64;
            res.degradation = degradation;
        }
        const serving::ServingReport r =
            serving::simulateServing(scfg, latency, res);
        serveTable.addRow(
            {resilient ? "retry+shed+degrade" : "none",
             formatPercent(r.meanAvailability),
             formatFixed(r.goodput, 3) + " req/s",
             formatTime(r.p95Latency),
             formatPercent(r.degradedFraction),
             std::to_string(r.dropped)});
    }
    std::cout << serveTable.render() << "\n";
    std::cout << "Degraded mode ("
              << cheap_cfg.baseSteps << "/" << cheap_cfg.interpSteps
              << "/" << cheap_cfg.srSteps << " steps vs "
              << full_cfg.baseSteps << "/" << full_cfg.interpSteps
              << "/" << full_cfg.srSteps << ") runs "
              << formatFixed(1.0 / degradation.serviceScale, 2)
              << "x faster per clip — under faults it converts lost "
                 "capacity into kept deadlines\ninstead of a "
                 "divergent queue.\n";
    return 0;
}
