/**
 * @file
 * Export a simulated inference timeline as a Chrome/Perfetto trace.
 *
 * Profiles Stable Diffusion with per-op records and writes
 * sd_trace.json, viewable at chrome://tracing or ui.perfetto.dev —
 * the same workflow the paper uses with PyTorch Profiler on real
 * hardware (Section III, "Tools").
 */

#include <fstream>
#include <iostream>

#include "models/stable_diffusion.hh"
#include "profiler/chrome_trace.hh"
#include "profiler/engine.hh"
#include "util/format.hh"

int
main(int argc, char** argv)
{
    using namespace mmgen;

    const std::string path = argc > 1 ? argv[1] : "sd_trace.json";

    profiler::ProfileOptions opts;
    opts.backend = graph::AttentionBackend::Flash;
    opts.keepOpRecords = true;
    profiler::Profiler prof(opts);
    const profiler::ProfileResult res =
        prof.profile(models::buildStableDiffusion());

    std::ofstream out(path);
    if (!out) {
        std::cerr << "cannot open " << path << " for writing\n";
        return 1;
    }
    profiler::writeChromeTrace(out, res);
    std::cout << "Wrote " << res.records.size()
              << " operator records covering "
              << formatTime(res.totalSeconds)
              << " of simulated inference to " << path << "\n";
    std::cout << "Open chrome://tracing or https://ui.perfetto.dev and "
                 "load the file.\n";
    return 0;
}
