/**
 * @file
 * Quickstart: profile Stable Diffusion on a simulated A100 and print
 * the operator breakdown under baseline and Flash attention.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/reports.hh"
#include "core/suite.hh"

int
main()
{
    using namespace mmgen;

    // 1. A simulated GPU (the paper's evaluation platform).
    core::CharacterizationSuite suite(hw::GpuSpec::a100_80gb());

    // 2. Profile one model of the paper's suite under both attention
    //    backends.
    const core::ModelRunResult sd =
        suite.run(models::ModelId::StableDiffusion);

    // 3. Inspect the results.
    std::cout << core::profileSummary(sd.baseline) << "\n";
    std::cout << core::profileSummary(sd.flash) << "\n";

    std::cout << "End-to-end Flash Attention speedup: "
              << sd.endToEndSpeedup() << "x\n";
    std::cout << "Attention module speedup:           "
              << sd.attentionModuleSpeedup() << "x\n";
    std::cout << "Sequence length range in UNet:      "
              << sd.flash.seqLens.minSeqLen() << " .. "
              << sd.flash.seqLens.maxSeqLen() << "\n";
    return 0;
}
