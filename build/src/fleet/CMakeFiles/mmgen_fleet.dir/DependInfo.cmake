
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fleet/aggregate.cc" "src/fleet/CMakeFiles/mmgen_fleet.dir/aggregate.cc.o" "gcc" "src/fleet/CMakeFiles/mmgen_fleet.dir/aggregate.cc.o.d"
  "/root/repo/src/fleet/fsdp.cc" "src/fleet/CMakeFiles/mmgen_fleet.dir/fsdp.cc.o" "gcc" "src/fleet/CMakeFiles/mmgen_fleet.dir/fsdp.cc.o.d"
  "/root/repo/src/fleet/population.cc" "src/fleet/CMakeFiles/mmgen_fleet.dir/population.cc.o" "gcc" "src/fleet/CMakeFiles/mmgen_fleet.dir/population.cc.o.d"
  "/root/repo/src/fleet/training_step.cc" "src/fleet/CMakeFiles/mmgen_fleet.dir/training_step.cc.o" "gcc" "src/fleet/CMakeFiles/mmgen_fleet.dir/training_step.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mmgen_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mmgen_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/mmgen_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mmgen_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mmgen_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
