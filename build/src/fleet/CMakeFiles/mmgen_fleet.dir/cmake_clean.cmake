file(REMOVE_RECURSE
  "CMakeFiles/mmgen_fleet.dir/aggregate.cc.o"
  "CMakeFiles/mmgen_fleet.dir/aggregate.cc.o.d"
  "CMakeFiles/mmgen_fleet.dir/fsdp.cc.o"
  "CMakeFiles/mmgen_fleet.dir/fsdp.cc.o.d"
  "CMakeFiles/mmgen_fleet.dir/population.cc.o"
  "CMakeFiles/mmgen_fleet.dir/population.cc.o.d"
  "CMakeFiles/mmgen_fleet.dir/training_step.cc.o"
  "CMakeFiles/mmgen_fleet.dir/training_step.cc.o.d"
  "libmmgen_fleet.a"
  "libmmgen_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmgen_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
