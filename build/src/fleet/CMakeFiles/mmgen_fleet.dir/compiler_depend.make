# Empty compiler generated dependencies file for mmgen_fleet.
# This may be replaced when dependencies are built.
