file(REMOVE_RECURSE
  "libmmgen_fleet.a"
)
