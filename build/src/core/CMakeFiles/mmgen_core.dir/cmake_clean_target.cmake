file(REMOVE_RECURSE
  "libmmgen_core.a"
)
