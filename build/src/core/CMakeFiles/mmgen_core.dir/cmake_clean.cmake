file(REMOVE_RECURSE
  "CMakeFiles/mmgen_core.dir/reports.cc.o"
  "CMakeFiles/mmgen_core.dir/reports.cc.o.d"
  "CMakeFiles/mmgen_core.dir/suite.cc.o"
  "CMakeFiles/mmgen_core.dir/suite.cc.o.d"
  "CMakeFiles/mmgen_core.dir/taxonomy.cc.o"
  "CMakeFiles/mmgen_core.dir/taxonomy.cc.o.d"
  "libmmgen_core.a"
  "libmmgen_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmgen_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
