# Empty dependencies file for mmgen_core.
# This may be replaced when dependencies are built.
