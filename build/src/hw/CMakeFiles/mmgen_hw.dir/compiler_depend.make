# Empty compiler generated dependencies file for mmgen_hw.
# This may be replaced when dependencies are built.
