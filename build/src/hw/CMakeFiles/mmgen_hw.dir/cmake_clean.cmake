file(REMOVE_RECURSE
  "CMakeFiles/mmgen_hw.dir/gpu_spec.cc.o"
  "CMakeFiles/mmgen_hw.dir/gpu_spec.cc.o.d"
  "CMakeFiles/mmgen_hw.dir/roofline.cc.o"
  "CMakeFiles/mmgen_hw.dir/roofline.cc.o.d"
  "libmmgen_hw.a"
  "libmmgen_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmgen_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
