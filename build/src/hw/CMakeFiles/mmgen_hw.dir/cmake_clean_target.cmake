file(REMOVE_RECURSE
  "libmmgen_hw.a"
)
