# Empty dependencies file for mmgen_tensor.
# This may be replaced when dependencies are built.
