file(REMOVE_RECURSE
  "libmmgen_tensor.a"
)
