
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/dtype.cc" "src/tensor/CMakeFiles/mmgen_tensor.dir/dtype.cc.o" "gcc" "src/tensor/CMakeFiles/mmgen_tensor.dir/dtype.cc.o.d"
  "/root/repo/src/tensor/tensor_desc.cc" "src/tensor/CMakeFiles/mmgen_tensor.dir/tensor_desc.cc.o" "gcc" "src/tensor/CMakeFiles/mmgen_tensor.dir/tensor_desc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mmgen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
