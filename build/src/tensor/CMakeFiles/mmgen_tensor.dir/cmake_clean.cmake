file(REMOVE_RECURSE
  "CMakeFiles/mmgen_tensor.dir/dtype.cc.o"
  "CMakeFiles/mmgen_tensor.dir/dtype.cc.o.d"
  "CMakeFiles/mmgen_tensor.dir/tensor_desc.cc.o"
  "CMakeFiles/mmgen_tensor.dir/tensor_desc.cc.o.d"
  "libmmgen_tensor.a"
  "libmmgen_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmgen_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
