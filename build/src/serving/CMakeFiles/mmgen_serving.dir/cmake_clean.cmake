file(REMOVE_RECURSE
  "CMakeFiles/mmgen_serving.dir/simulator.cc.o"
  "CMakeFiles/mmgen_serving.dir/simulator.cc.o.d"
  "libmmgen_serving.a"
  "libmmgen_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmgen_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
