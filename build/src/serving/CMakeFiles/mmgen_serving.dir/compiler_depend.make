# Empty compiler generated dependencies file for mmgen_serving.
# This may be replaced when dependencies are built.
