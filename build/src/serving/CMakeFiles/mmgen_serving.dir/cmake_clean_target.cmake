file(REMOVE_RECURSE
  "libmmgen_serving.a"
)
