file(REMOVE_RECURSE
  "CMakeFiles/mmgen_graph.dir/builder.cc.o"
  "CMakeFiles/mmgen_graph.dir/builder.cc.o.d"
  "CMakeFiles/mmgen_graph.dir/op.cc.o"
  "CMakeFiles/mmgen_graph.dir/op.cc.o.d"
  "CMakeFiles/mmgen_graph.dir/pipeline.cc.o"
  "CMakeFiles/mmgen_graph.dir/pipeline.cc.o.d"
  "CMakeFiles/mmgen_graph.dir/trace.cc.o"
  "CMakeFiles/mmgen_graph.dir/trace.cc.o.d"
  "libmmgen_graph.a"
  "libmmgen_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmgen_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
