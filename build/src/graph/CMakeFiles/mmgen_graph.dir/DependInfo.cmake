
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cc" "src/graph/CMakeFiles/mmgen_graph.dir/builder.cc.o" "gcc" "src/graph/CMakeFiles/mmgen_graph.dir/builder.cc.o.d"
  "/root/repo/src/graph/op.cc" "src/graph/CMakeFiles/mmgen_graph.dir/op.cc.o" "gcc" "src/graph/CMakeFiles/mmgen_graph.dir/op.cc.o.d"
  "/root/repo/src/graph/pipeline.cc" "src/graph/CMakeFiles/mmgen_graph.dir/pipeline.cc.o" "gcc" "src/graph/CMakeFiles/mmgen_graph.dir/pipeline.cc.o.d"
  "/root/repo/src/graph/trace.cc" "src/graph/CMakeFiles/mmgen_graph.dir/trace.cc.o" "gcc" "src/graph/CMakeFiles/mmgen_graph.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/mmgen_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mmgen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
