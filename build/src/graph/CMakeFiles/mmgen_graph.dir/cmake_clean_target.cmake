file(REMOVE_RECURSE
  "libmmgen_graph.a"
)
