# Empty compiler generated dependencies file for mmgen_graph.
# This may be replaced when dependencies are built.
