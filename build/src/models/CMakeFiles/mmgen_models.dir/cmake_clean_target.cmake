file(REMOVE_RECURSE
  "libmmgen_models.a"
)
