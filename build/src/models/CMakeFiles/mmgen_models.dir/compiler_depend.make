# Empty compiler generated dependencies file for mmgen_models.
# This may be replaced when dependencies are built.
