
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/blocks.cc" "src/models/CMakeFiles/mmgen_models.dir/blocks.cc.o" "gcc" "src/models/CMakeFiles/mmgen_models.dir/blocks.cc.o.d"
  "/root/repo/src/models/imagen.cc" "src/models/CMakeFiles/mmgen_models.dir/imagen.cc.o" "gcc" "src/models/CMakeFiles/mmgen_models.dir/imagen.cc.o.d"
  "/root/repo/src/models/llama.cc" "src/models/CMakeFiles/mmgen_models.dir/llama.cc.o" "gcc" "src/models/CMakeFiles/mmgen_models.dir/llama.cc.o.d"
  "/root/repo/src/models/make_a_video.cc" "src/models/CMakeFiles/mmgen_models.dir/make_a_video.cc.o" "gcc" "src/models/CMakeFiles/mmgen_models.dir/make_a_video.cc.o.d"
  "/root/repo/src/models/model_suite.cc" "src/models/CMakeFiles/mmgen_models.dir/model_suite.cc.o" "gcc" "src/models/CMakeFiles/mmgen_models.dir/model_suite.cc.o.d"
  "/root/repo/src/models/muse.cc" "src/models/CMakeFiles/mmgen_models.dir/muse.cc.o" "gcc" "src/models/CMakeFiles/mmgen_models.dir/muse.cc.o.d"
  "/root/repo/src/models/parti.cc" "src/models/CMakeFiles/mmgen_models.dir/parti.cc.o" "gcc" "src/models/CMakeFiles/mmgen_models.dir/parti.cc.o.d"
  "/root/repo/src/models/phenaki.cc" "src/models/CMakeFiles/mmgen_models.dir/phenaki.cc.o" "gcc" "src/models/CMakeFiles/mmgen_models.dir/phenaki.cc.o.d"
  "/root/repo/src/models/prod_image.cc" "src/models/CMakeFiles/mmgen_models.dir/prod_image.cc.o" "gcc" "src/models/CMakeFiles/mmgen_models.dir/prod_image.cc.o.d"
  "/root/repo/src/models/stable_diffusion.cc" "src/models/CMakeFiles/mmgen_models.dir/stable_diffusion.cc.o" "gcc" "src/models/CMakeFiles/mmgen_models.dir/stable_diffusion.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mmgen_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mmgen_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mmgen_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
