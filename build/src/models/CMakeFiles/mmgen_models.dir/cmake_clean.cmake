file(REMOVE_RECURSE
  "CMakeFiles/mmgen_models.dir/blocks.cc.o"
  "CMakeFiles/mmgen_models.dir/blocks.cc.o.d"
  "CMakeFiles/mmgen_models.dir/imagen.cc.o"
  "CMakeFiles/mmgen_models.dir/imagen.cc.o.d"
  "CMakeFiles/mmgen_models.dir/llama.cc.o"
  "CMakeFiles/mmgen_models.dir/llama.cc.o.d"
  "CMakeFiles/mmgen_models.dir/make_a_video.cc.o"
  "CMakeFiles/mmgen_models.dir/make_a_video.cc.o.d"
  "CMakeFiles/mmgen_models.dir/model_suite.cc.o"
  "CMakeFiles/mmgen_models.dir/model_suite.cc.o.d"
  "CMakeFiles/mmgen_models.dir/muse.cc.o"
  "CMakeFiles/mmgen_models.dir/muse.cc.o.d"
  "CMakeFiles/mmgen_models.dir/parti.cc.o"
  "CMakeFiles/mmgen_models.dir/parti.cc.o.d"
  "CMakeFiles/mmgen_models.dir/phenaki.cc.o"
  "CMakeFiles/mmgen_models.dir/phenaki.cc.o.d"
  "CMakeFiles/mmgen_models.dir/prod_image.cc.o"
  "CMakeFiles/mmgen_models.dir/prod_image.cc.o.d"
  "CMakeFiles/mmgen_models.dir/stable_diffusion.cc.o"
  "CMakeFiles/mmgen_models.dir/stable_diffusion.cc.o.d"
  "libmmgen_models.a"
  "libmmgen_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmgen_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
