# Empty dependencies file for mmgen_util.
# This may be replaced when dependencies are built.
