file(REMOVE_RECURSE
  "CMakeFiles/mmgen_util.dir/csv.cc.o"
  "CMakeFiles/mmgen_util.dir/csv.cc.o.d"
  "CMakeFiles/mmgen_util.dir/format.cc.o"
  "CMakeFiles/mmgen_util.dir/format.cc.o.d"
  "CMakeFiles/mmgen_util.dir/logging.cc.o"
  "CMakeFiles/mmgen_util.dir/logging.cc.o.d"
  "CMakeFiles/mmgen_util.dir/rng.cc.o"
  "CMakeFiles/mmgen_util.dir/rng.cc.o.d"
  "CMakeFiles/mmgen_util.dir/stats.cc.o"
  "CMakeFiles/mmgen_util.dir/stats.cc.o.d"
  "CMakeFiles/mmgen_util.dir/table.cc.o"
  "CMakeFiles/mmgen_util.dir/table.cc.o.d"
  "libmmgen_util.a"
  "libmmgen_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmgen_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
