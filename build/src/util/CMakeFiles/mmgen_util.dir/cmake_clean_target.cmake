file(REMOVE_RECURSE
  "libmmgen_util.a"
)
