file(REMOVE_RECURSE
  "libmmgen_kernels.a"
)
