# Empty compiler generated dependencies file for mmgen_kernels.
# This may be replaced when dependencies are built.
