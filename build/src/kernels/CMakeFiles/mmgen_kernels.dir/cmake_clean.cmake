file(REMOVE_RECURSE
  "CMakeFiles/mmgen_kernels.dir/attention.cc.o"
  "CMakeFiles/mmgen_kernels.dir/attention.cc.o.d"
  "CMakeFiles/mmgen_kernels.dir/cost_model.cc.o"
  "CMakeFiles/mmgen_kernels.dir/cost_model.cc.o.d"
  "CMakeFiles/mmgen_kernels.dir/efficiency.cc.o"
  "CMakeFiles/mmgen_kernels.dir/efficiency.cc.o.d"
  "CMakeFiles/mmgen_kernels.dir/kernel_cost.cc.o"
  "CMakeFiles/mmgen_kernels.dir/kernel_cost.cc.o.d"
  "libmmgen_kernels.a"
  "libmmgen_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmgen_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
