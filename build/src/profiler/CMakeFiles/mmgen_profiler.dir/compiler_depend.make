# Empty compiler generated dependencies file for mmgen_profiler.
# This may be replaced when dependencies are built.
