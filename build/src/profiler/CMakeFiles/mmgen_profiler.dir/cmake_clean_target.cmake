file(REMOVE_RECURSE
  "libmmgen_profiler.a"
)
