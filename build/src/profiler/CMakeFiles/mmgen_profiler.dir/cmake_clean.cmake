file(REMOVE_RECURSE
  "CMakeFiles/mmgen_profiler.dir/chrome_trace.cc.o"
  "CMakeFiles/mmgen_profiler.dir/chrome_trace.cc.o.d"
  "CMakeFiles/mmgen_profiler.dir/engine.cc.o"
  "CMakeFiles/mmgen_profiler.dir/engine.cc.o.d"
  "CMakeFiles/mmgen_profiler.dir/record.cc.o"
  "CMakeFiles/mmgen_profiler.dir/record.cc.o.d"
  "libmmgen_profiler.a"
  "libmmgen_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmgen_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
