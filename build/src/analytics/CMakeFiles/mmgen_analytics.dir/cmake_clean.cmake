file(REMOVE_RECURSE
  "CMakeFiles/mmgen_analytics.dir/amdahl.cc.o"
  "CMakeFiles/mmgen_analytics.dir/amdahl.cc.o.d"
  "CMakeFiles/mmgen_analytics.dir/inference_footprint.cc.o"
  "CMakeFiles/mmgen_analytics.dir/inference_footprint.cc.o.d"
  "CMakeFiles/mmgen_analytics.dir/memory_model.cc.o"
  "CMakeFiles/mmgen_analytics.dir/memory_model.cc.o.d"
  "CMakeFiles/mmgen_analytics.dir/pareto.cc.o"
  "CMakeFiles/mmgen_analytics.dir/pareto.cc.o.d"
  "CMakeFiles/mmgen_analytics.dir/phase_classifier.cc.o"
  "CMakeFiles/mmgen_analytics.dir/phase_classifier.cc.o.d"
  "CMakeFiles/mmgen_analytics.dir/pod_scheduler.cc.o"
  "CMakeFiles/mmgen_analytics.dir/pod_scheduler.cc.o.d"
  "CMakeFiles/mmgen_analytics.dir/temporal_scaling.cc.o"
  "CMakeFiles/mmgen_analytics.dir/temporal_scaling.cc.o.d"
  "libmmgen_analytics.a"
  "libmmgen_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmgen_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
