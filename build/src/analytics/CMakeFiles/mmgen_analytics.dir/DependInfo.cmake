
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/amdahl.cc" "src/analytics/CMakeFiles/mmgen_analytics.dir/amdahl.cc.o" "gcc" "src/analytics/CMakeFiles/mmgen_analytics.dir/amdahl.cc.o.d"
  "/root/repo/src/analytics/inference_footprint.cc" "src/analytics/CMakeFiles/mmgen_analytics.dir/inference_footprint.cc.o" "gcc" "src/analytics/CMakeFiles/mmgen_analytics.dir/inference_footprint.cc.o.d"
  "/root/repo/src/analytics/memory_model.cc" "src/analytics/CMakeFiles/mmgen_analytics.dir/memory_model.cc.o" "gcc" "src/analytics/CMakeFiles/mmgen_analytics.dir/memory_model.cc.o.d"
  "/root/repo/src/analytics/pareto.cc" "src/analytics/CMakeFiles/mmgen_analytics.dir/pareto.cc.o" "gcc" "src/analytics/CMakeFiles/mmgen_analytics.dir/pareto.cc.o.d"
  "/root/repo/src/analytics/phase_classifier.cc" "src/analytics/CMakeFiles/mmgen_analytics.dir/phase_classifier.cc.o" "gcc" "src/analytics/CMakeFiles/mmgen_analytics.dir/phase_classifier.cc.o.d"
  "/root/repo/src/analytics/pod_scheduler.cc" "src/analytics/CMakeFiles/mmgen_analytics.dir/pod_scheduler.cc.o" "gcc" "src/analytics/CMakeFiles/mmgen_analytics.dir/pod_scheduler.cc.o.d"
  "/root/repo/src/analytics/temporal_scaling.cc" "src/analytics/CMakeFiles/mmgen_analytics.dir/temporal_scaling.cc.o" "gcc" "src/analytics/CMakeFiles/mmgen_analytics.dir/temporal_scaling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mmgen_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/mmgen_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mmgen_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mmgen_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mmgen_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
