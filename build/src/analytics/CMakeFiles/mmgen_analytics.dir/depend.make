# Empty dependencies file for mmgen_analytics.
# This may be replaced when dependencies are built.
