file(REMOVE_RECURSE
  "libmmgen_analytics.a"
)
