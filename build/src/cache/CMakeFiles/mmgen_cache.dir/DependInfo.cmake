
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/attention_study.cc" "src/cache/CMakeFiles/mmgen_cache.dir/attention_study.cc.o" "gcc" "src/cache/CMakeFiles/mmgen_cache.dir/attention_study.cc.o.d"
  "/root/repo/src/cache/hierarchy.cc" "src/cache/CMakeFiles/mmgen_cache.dir/hierarchy.cc.o" "gcc" "src/cache/CMakeFiles/mmgen_cache.dir/hierarchy.cc.o.d"
  "/root/repo/src/cache/set_assoc_cache.cc" "src/cache/CMakeFiles/mmgen_cache.dir/set_assoc_cache.cc.o" "gcc" "src/cache/CMakeFiles/mmgen_cache.dir/set_assoc_cache.cc.o.d"
  "/root/repo/src/cache/trace_gen.cc" "src/cache/CMakeFiles/mmgen_cache.dir/trace_gen.cc.o" "gcc" "src/cache/CMakeFiles/mmgen_cache.dir/trace_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/mmgen_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mmgen_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/mmgen_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mmgen_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mmgen_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
