# Empty dependencies file for mmgen_cache.
# This may be replaced when dependencies are built.
