file(REMOVE_RECURSE
  "CMakeFiles/mmgen_cache.dir/attention_study.cc.o"
  "CMakeFiles/mmgen_cache.dir/attention_study.cc.o.d"
  "CMakeFiles/mmgen_cache.dir/hierarchy.cc.o"
  "CMakeFiles/mmgen_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/mmgen_cache.dir/set_assoc_cache.cc.o"
  "CMakeFiles/mmgen_cache.dir/set_assoc_cache.cc.o.d"
  "CMakeFiles/mmgen_cache.dir/trace_gen.cc.o"
  "CMakeFiles/mmgen_cache.dir/trace_gen.cc.o.d"
  "libmmgen_cache.a"
  "libmmgen_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmgen_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
