file(REMOVE_RECURSE
  "libmmgen_cache.a"
)
