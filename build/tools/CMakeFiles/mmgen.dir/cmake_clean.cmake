file(REMOVE_RECURSE
  "CMakeFiles/mmgen.dir/mmgen_cli.cc.o"
  "CMakeFiles/mmgen.dir/mmgen_cli.cc.o.d"
  "mmgen"
  "mmgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
