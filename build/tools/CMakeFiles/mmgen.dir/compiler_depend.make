# Empty compiler generated dependencies file for mmgen.
# This may be replaced when dependencies are built.
