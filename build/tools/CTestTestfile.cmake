# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/mmgen" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_profile "/root/repo/build/tools/mmgen" "profile" "Muse" "--backend" "flash_decode" "--gpu" "v100")
set_tests_properties(cli_profile PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_footprint "/root/repo/build/tools/mmgen" "footprint")
set_tests_properties(cli_footprint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_model "/root/repo/build/tools/mmgen" "profile" "NoSuchModel")
set_tests_properties(cli_unknown_model PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage "/root/repo/build/tools/mmgen")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_trace "/root/repo/build/tools/mmgen" "trace" "Muse" "cli_trace_smoke.json")
set_tests_properties(cli_trace PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_taxonomy_v100 "/root/repo/build/tools/mmgen" "taxonomy" "--gpu" "v100")
set_tests_properties(cli_taxonomy_v100 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
