file(REMOVE_RECURSE
  "../bench/fig06_operator_breakdown"
  "../bench/fig06_operator_breakdown.pdb"
  "CMakeFiles/fig06_operator_breakdown.dir/fig06_operator_breakdown.cc.o"
  "CMakeFiles/fig06_operator_breakdown.dir/fig06_operator_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_operator_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
