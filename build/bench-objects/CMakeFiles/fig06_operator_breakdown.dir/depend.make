# Empty dependencies file for fig06_operator_breakdown.
# This may be replaced when dependencies are built.
