# Empty dependencies file for fig08_seqlen_distribution.
# This may be replaced when dependencies are built.
