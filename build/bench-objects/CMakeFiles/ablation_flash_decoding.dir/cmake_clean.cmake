file(REMOVE_RECURSE
  "../bench/ablation_flash_decoding"
  "../bench/ablation_flash_decoding.pdb"
  "CMakeFiles/ablation_flash_decoding.dir/ablation_flash_decoding.cc.o"
  "CMakeFiles/ablation_flash_decoding.dir/ablation_flash_decoding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flash_decoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
