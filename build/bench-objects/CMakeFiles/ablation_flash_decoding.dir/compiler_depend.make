# Empty compiler generated dependencies file for ablation_flash_decoding.
# This may be replaced when dependencies are built.
