# Empty compiler generated dependencies file for fig04_pareto_frontier.
# This may be replaced when dependencies are built.
