file(REMOVE_RECURSE
  "../bench/fig04_pareto_frontier"
  "../bench/fig04_pareto_frontier.pdb"
  "CMakeFiles/fig04_pareto_frontier.dir/fig04_pareto_frontier.cc.o"
  "CMakeFiles/fig04_pareto_frontier.dir/fig04_pareto_frontier.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_pareto_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
