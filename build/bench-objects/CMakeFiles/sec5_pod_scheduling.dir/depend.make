# Empty dependencies file for sec5_pod_scheduling.
# This may be replaced when dependencies are built.
