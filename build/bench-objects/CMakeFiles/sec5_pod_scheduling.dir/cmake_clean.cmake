file(REMOVE_RECURSE
  "../bench/sec5_pod_scheduling"
  "../bench/sec5_pod_scheduling.pdb"
  "CMakeFiles/sec5_pod_scheduling.dir/sec5_pod_scheduling.cc.o"
  "CMakeFiles/sec5_pod_scheduling.dir/sec5_pod_scheduling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_pod_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
