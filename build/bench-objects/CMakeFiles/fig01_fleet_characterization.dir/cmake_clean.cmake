file(REMOVE_RECURSE
  "../bench/fig01_fleet_characterization"
  "../bench/fig01_fleet_characterization.pdb"
  "CMakeFiles/fig01_fleet_characterization.dir/fig01_fleet_characterization.cc.o"
  "CMakeFiles/fig01_fleet_characterization.dir/fig01_fleet_characterization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_fleet_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
