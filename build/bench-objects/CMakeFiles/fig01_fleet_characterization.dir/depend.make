# Empty dependencies file for fig01_fleet_characterization.
# This may be replaced when dependencies are built.
