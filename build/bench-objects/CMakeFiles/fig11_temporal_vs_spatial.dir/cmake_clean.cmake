file(REMOVE_RECURSE
  "../bench/fig11_temporal_vs_spatial"
  "../bench/fig11_temporal_vs_spatial.pdb"
  "CMakeFiles/fig11_temporal_vs_spatial.dir/fig11_temporal_vs_spatial.cc.o"
  "CMakeFiles/fig11_temporal_vs_spatial.dir/fig11_temporal_vs_spatial.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_temporal_vs_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
