# Empty dependencies file for fig11_temporal_vs_spatial.
# This may be replaced when dependencies are built.
