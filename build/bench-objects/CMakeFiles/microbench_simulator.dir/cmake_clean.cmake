file(REMOVE_RECURSE
  "../bench/microbench_simulator"
  "../bench/microbench_simulator.pdb"
  "CMakeFiles/microbench_simulator.dir/microbench_simulator.cc.o"
  "CMakeFiles/microbench_simulator.dir/microbench_simulator.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
