file(REMOVE_RECURSE
  "../bench/ablation_calibration"
  "../bench/ablation_calibration.pdb"
  "CMakeFiles/ablation_calibration.dir/ablation_calibration.cc.o"
  "CMakeFiles/ablation_calibration.dir/ablation_calibration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
