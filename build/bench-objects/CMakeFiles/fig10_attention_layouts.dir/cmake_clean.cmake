file(REMOVE_RECURSE
  "../bench/fig10_attention_layouts"
  "../bench/fig10_attention_layouts.pdb"
  "CMakeFiles/fig10_attention_layouts.dir/fig10_attention_layouts.cc.o"
  "CMakeFiles/fig10_attention_layouts.dir/fig10_attention_layouts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_attention_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
