# Empty compiler generated dependencies file for fig10_attention_layouts.
# This may be replaced when dependencies are built.
