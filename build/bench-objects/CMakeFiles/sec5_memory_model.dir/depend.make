# Empty dependencies file for sec5_memory_model.
# This may be replaced when dependencies are built.
