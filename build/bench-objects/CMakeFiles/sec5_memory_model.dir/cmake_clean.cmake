file(REMOVE_RECURSE
  "../bench/sec5_memory_model"
  "../bench/sec5_memory_model.pdb"
  "CMakeFiles/sec5_memory_model.dir/sec5_memory_model.cc.o"
  "CMakeFiles/sec5_memory_model.dir/sec5_memory_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_memory_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
