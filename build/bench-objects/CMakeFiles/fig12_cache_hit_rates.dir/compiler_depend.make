# Empty compiler generated dependencies file for fig12_cache_hit_rates.
# This may be replaced when dependencies are built.
