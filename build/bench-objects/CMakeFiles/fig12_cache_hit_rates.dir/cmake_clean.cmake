file(REMOVE_RECURSE
  "../bench/fig12_cache_hit_rates"
  "../bench/fig12_cache_hit_rates.pdb"
  "CMakeFiles/fig12_cache_hit_rates.dir/fig12_cache_hit_rates.cc.o"
  "CMakeFiles/fig12_cache_hit_rates.dir/fig12_cache_hit_rates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cache_hit_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
