# Empty compiler generated dependencies file for training_throughput.
# This may be replaced when dependencies are built.
