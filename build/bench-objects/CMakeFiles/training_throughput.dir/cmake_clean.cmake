file(REMOVE_RECURSE
  "../bench/training_throughput"
  "../bench/training_throughput.pdb"
  "CMakeFiles/training_throughput.dir/training_throughput.cc.o"
  "CMakeFiles/training_throughput.dir/training_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
