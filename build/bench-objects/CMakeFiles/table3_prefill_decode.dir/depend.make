# Empty dependencies file for table3_prefill_decode.
# This may be replaced when dependencies are built.
