file(REMOVE_RECURSE
  "../bench/table3_prefill_decode"
  "../bench/table3_prefill_decode.pdb"
  "CMakeFiles/table3_prefill_decode.dir/table3_prefill_decode.cc.o"
  "CMakeFiles/table3_prefill_decode.dir/table3_prefill_decode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_prefill_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
