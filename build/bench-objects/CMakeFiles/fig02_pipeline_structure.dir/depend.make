# Empty dependencies file for fig02_pipeline_structure.
# This may be replaced when dependencies are built.
