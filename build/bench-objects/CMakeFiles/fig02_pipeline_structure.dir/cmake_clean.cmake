file(REMOVE_RECURSE
  "../bench/fig02_pipeline_structure"
  "../bench/fig02_pipeline_structure.pdb"
  "CMakeFiles/fig02_pipeline_structure.dir/fig02_pipeline_structure.cc.o"
  "CMakeFiles/fig02_pipeline_structure.dir/fig02_pipeline_structure.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_pipeline_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
