file(REMOVE_RECURSE
  "../bench/table2_flash_speedup"
  "../bench/table2_flash_speedup.pdb"
  "CMakeFiles/table2_flash_speedup.dir/table2_flash_speedup.cc.o"
  "CMakeFiles/table2_flash_speedup.dir/table2_flash_speedup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_flash_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
