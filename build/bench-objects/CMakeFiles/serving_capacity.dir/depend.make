# Empty dependencies file for serving_capacity.
# This may be replaced when dependencies are built.
