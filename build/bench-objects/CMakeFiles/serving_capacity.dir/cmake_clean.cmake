file(REMOVE_RECURSE
  "../bench/serving_capacity"
  "../bench/serving_capacity.pdb"
  "CMakeFiles/serving_capacity.dir/serving_capacity.cc.o"
  "CMakeFiles/serving_capacity.dir/serving_capacity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
