file(REMOVE_RECURSE
  "../bench/memory_footprint"
  "../bench/memory_footprint.pdb"
  "CMakeFiles/memory_footprint.dir/memory_footprint.cc.o"
  "CMakeFiles/memory_footprint.dir/memory_footprint.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
