# Empty dependencies file for fig13_temporal_flops_scaling.
# This may be replaced when dependencies are built.
