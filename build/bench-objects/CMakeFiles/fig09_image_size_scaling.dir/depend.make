# Empty dependencies file for fig09_image_size_scaling.
# This may be replaced when dependencies are built.
