file(REMOVE_RECURSE
  "../bench/fig09_image_size_scaling"
  "../bench/fig09_image_size_scaling.pdb"
  "CMakeFiles/fig09_image_size_scaling.dir/fig09_image_size_scaling.cc.o"
  "CMakeFiles/fig09_image_size_scaling.dir/fig09_image_size_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_image_size_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
