file(REMOVE_RECURSE
  "../bench/sec2_factorized_attention"
  "../bench/sec2_factorized_attention.pdb"
  "CMakeFiles/sec2_factorized_attention.dir/sec2_factorized_attention.cc.o"
  "CMakeFiles/sec2_factorized_attention.dir/sec2_factorized_attention.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec2_factorized_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
