# Empty compiler generated dependencies file for sec2_factorized_attention.
# This may be replaced when dependencies are built.
