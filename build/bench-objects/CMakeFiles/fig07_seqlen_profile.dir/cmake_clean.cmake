file(REMOVE_RECURSE
  "../bench/fig07_seqlen_profile"
  "../bench/fig07_seqlen_profile.pdb"
  "CMakeFiles/fig07_seqlen_profile.dir/fig07_seqlen_profile.cc.o"
  "CMakeFiles/fig07_seqlen_profile.dir/fig07_seqlen_profile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_seqlen_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
