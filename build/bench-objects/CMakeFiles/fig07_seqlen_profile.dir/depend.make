# Empty dependencies file for fig07_seqlen_profile.
# This may be replaced when dependencies are built.
