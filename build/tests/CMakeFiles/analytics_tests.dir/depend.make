# Empty dependencies file for analytics_tests.
# This may be replaced when dependencies are built.
