file(REMOVE_RECURSE
  "CMakeFiles/analytics_tests.dir/analytics/analytics_test.cc.o"
  "CMakeFiles/analytics_tests.dir/analytics/analytics_test.cc.o.d"
  "CMakeFiles/analytics_tests.dir/analytics/inference_footprint_test.cc.o"
  "CMakeFiles/analytics_tests.dir/analytics/inference_footprint_test.cc.o.d"
  "CMakeFiles/analytics_tests.dir/analytics/pod_scheduler_test.cc.o"
  "CMakeFiles/analytics_tests.dir/analytics/pod_scheduler_test.cc.o.d"
  "analytics_tests"
  "analytics_tests.pdb"
  "analytics_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analytics_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
