file(REMOVE_RECURSE
  "CMakeFiles/models_tests.dir/models/blocks_test.cc.o"
  "CMakeFiles/models_tests.dir/models/blocks_test.cc.o.d"
  "CMakeFiles/models_tests.dir/models/model_suite_test.cc.o"
  "CMakeFiles/models_tests.dir/models/model_suite_test.cc.o.d"
  "CMakeFiles/models_tests.dir/models/unet_property_test.cc.o"
  "CMakeFiles/models_tests.dir/models/unet_property_test.cc.o.d"
  "models_tests"
  "models_tests.pdb"
  "models_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/models_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
