
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/roofline_test.cc" "tests/CMakeFiles/hw_tests.dir/hw/roofline_test.cc.o" "gcc" "tests/CMakeFiles/hw_tests.dir/hw/roofline_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mmgen_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mmgen_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/fleet/CMakeFiles/mmgen_fleet.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/mmgen_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/mmgen_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/mmgen_models.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/mmgen_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/mmgen_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/mmgen_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mmgen_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/mmgen_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mmgen_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
