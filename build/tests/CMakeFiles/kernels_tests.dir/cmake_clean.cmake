file(REMOVE_RECURSE
  "CMakeFiles/kernels_tests.dir/kernels/attention_test.cc.o"
  "CMakeFiles/kernels_tests.dir/kernels/attention_test.cc.o.d"
  "CMakeFiles/kernels_tests.dir/kernels/cost_model_test.cc.o"
  "CMakeFiles/kernels_tests.dir/kernels/cost_model_test.cc.o.d"
  "CMakeFiles/kernels_tests.dir/kernels/efficiency_test.cc.o"
  "CMakeFiles/kernels_tests.dir/kernels/efficiency_test.cc.o.d"
  "CMakeFiles/kernels_tests.dir/kernels/occupancy_test.cc.o"
  "CMakeFiles/kernels_tests.dir/kernels/occupancy_test.cc.o.d"
  "kernels_tests"
  "kernels_tests.pdb"
  "kernels_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernels_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
