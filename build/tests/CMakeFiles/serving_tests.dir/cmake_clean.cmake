file(REMOVE_RECURSE
  "CMakeFiles/serving_tests.dir/serving/simulator_test.cc.o"
  "CMakeFiles/serving_tests.dir/serving/simulator_test.cc.o.d"
  "serving_tests"
  "serving_tests.pdb"
  "serving_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
