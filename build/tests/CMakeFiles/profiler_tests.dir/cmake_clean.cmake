file(REMOVE_RECURSE
  "CMakeFiles/profiler_tests.dir/profiler/chrome_trace_test.cc.o"
  "CMakeFiles/profiler_tests.dir/profiler/chrome_trace_test.cc.o.d"
  "CMakeFiles/profiler_tests.dir/profiler/engine_test.cc.o"
  "CMakeFiles/profiler_tests.dir/profiler/engine_test.cc.o.d"
  "profiler_tests"
  "profiler_tests.pdb"
  "profiler_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profiler_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
