# Empty dependencies file for profiler_tests.
# This may be replaced when dependencies are built.
