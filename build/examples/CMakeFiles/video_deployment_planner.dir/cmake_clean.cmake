file(REMOVE_RECURSE
  "CMakeFiles/video_deployment_planner.dir/video_deployment_planner.cpp.o"
  "CMakeFiles/video_deployment_planner.dir/video_deployment_planner.cpp.o.d"
  "video_deployment_planner"
  "video_deployment_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_deployment_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
