# Empty compiler generated dependencies file for video_deployment_planner.
# This may be replaced when dependencies are built.
