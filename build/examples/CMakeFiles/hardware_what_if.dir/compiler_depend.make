# Empty compiler generated dependencies file for hardware_what_if.
# This may be replaced when dependencies are built.
