file(REMOVE_RECURSE
  "CMakeFiles/hardware_what_if.dir/hardware_what_if.cpp.o"
  "CMakeFiles/hardware_what_if.dir/hardware_what_if.cpp.o.d"
  "hardware_what_if"
  "hardware_what_if.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_what_if.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
