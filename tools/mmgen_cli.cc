/**
 * @file
 * mmgen command-line interface.
 *
 * Subcommands:
 *   list                          the model suite and GPU presets
 *   profile <model> [options]     one-model operator breakdown
 *   suite [options]               Table II / breakdown across models
 *   taxonomy                      Table I labels
 *   footprint                     peak-memory report
 *   trace <model> <out.json>      Chrome/Perfetto timeline export
 *
 * Options:
 *   --gpu a100|v100|h100          simulated device (default a100)
 *   --backend baseline|flash|flash_decode   attention backend
 */

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analytics/inference_footprint.hh"
#include "core/lint.hh"
#include "exec/memory.hh"
#include "core/reports.hh"
#include "core/suite.hh"
#include "core/taxonomy.hh"
#include "models/stable_diffusion.hh"
#include "profiler/chrome_trace.hh"
#include "runtime/runtime_metrics.hh"
#include "runtime/thread_pool.hh"
#include "serving/cluster.hh"
#include "serving/simulator.hh"
#include "telemetry/consistency.hh"
#include "telemetry/export.hh"
#include "telemetry/telemetry.hh"
#include "util/format.hh"
#include "util/json.hh"
#include "util/logging.hh"

namespace {

using namespace mmgen;

int
usage()
{
    std::cerr
        << "usage: mmgen <command> [options]\n"
        << "  list                        models and GPU presets\n"
        << "  profile <model> [options]   one-model breakdown\n"
        << "  hotspots <model> [options]  top operator sites by time\n"
        << "  suite [options]             both-backend suite run\n"
        << "  taxonomy                    Table I labels\n"
        << "  footprint                   peak-memory report\n"
        << "  trace <model> <out.json>    Chrome trace export\n"
        << "  serve <model> [options]     fault-tolerant serving sim\n"
        << "  stats [options]             run the suite, print runtime\n"
        << "                              cache / thread-pool counters\n"
        << "  lint [--model X|--all]      graph & physics verifier\n"
        << "  analyze --memory [--model X|--all]\n"
        << "                              static memory-liveness\n"
        << "                              analysis & admission bound\n"
        << "options:\n"
        << "  --gpu a100|v100|h100        (default a100)\n"
        << "  --backend baseline|flash|flash_decode\n"
        << "  --jobs N                    parallel sweep/lint lanes\n"
        << "                              (default: MMGEN_JOBS env,\n"
        << "                              else hardware threads)\n"
        << "profile/trace options (timeline scheduler):\n"
        << "  --trace FILE                also write the profiled\n"
        << "                              timeline as Chrome-trace\n"
        << "                              JSON (profile subcommand)\n"
        << "  --streams N                 hardware streams (default 1;\n"
        << "                              2 overlaps weight copies)\n"
        << "  --launch-depth N            host launch-queue depth\n"
        << "                              (default 0 = synchronous)\n"
        << "  --graph-launch              amortize repeated launches\n"
        << "                              as a captured CUDA graph\n"
        << "  --graph-replay-frac F       overhead fraction each graph\n"
        << "                              replay still pays (default 0)\n"
        << "  --stream-weights            peel weight traffic of\n"
        << "                              memory-bound kernels onto\n"
        << "                              the copy stream\n"
        << "serve options:\n"
        << "  --rate R --gpus N --batch B --horizon S --seed S\n"
        << "  --mtbf S --mttr S           per-GPU failure process\n"
        << "  --preempt-mtbf S --preempt-mean S\n"
        << "  --straggler-frac F --straggler-slowdown X\n"
        << "  --deadline S --timeout S    request SLO / batch abort\n"
        << "  --retries N --max-queue N   retry budget / admission\n"
        << "  --degrade-threshold N       queue depth to degrade at\n"
        << "  --degrade-steps F           fraction of denoise steps\n"
        << "                              kept in degraded mode\n"
        << "serve cluster options (--replicas or --chaos selects the\n"
        << "cluster simulator; --gpus then means GPUs per replica):\n"
        << "  --replicas N                replica pools behind router\n"
        << "  --router round-robin|least-loaded|domain-aware\n"
        << "  --chaos NAME                none|kill-replica|\n"
        << "                              kill-replica-at-zero|\n"
        << "                              rolling-kill|degrade-domain|\n"
        << "                              straggle-gpu\n"
        << "  --hedge-delay S             hedge after S seconds, or\n"
        << "  --hedge-quantile Q          derive delay from the\n"
        << "                              Q-quantile batch service\n"
        << "  --breaker-threshold N       failures to open breaker\n"
        << "  --breaker-open S            open duration before probe\n"
        << "  --ckpt-interval N           checkpoint every N iters of\n"
        << "                              the dominant pipeline stage\n"
        << "  --ckpt-cost S               GPU-seconds per checkpoint\n"
        << "  --probe-interval S          health-probe period\n"
        << "  --domain-size N             replicas per failure domain\n"
        << "                              (default 1: one per replica)\n"
        << "  --domain-mtbf S --domain-mttr S\n"
        << "                              correlated rack outages\n"
        << "telemetry options (profile / serve / stats):\n"
        << "  --metrics-out FILE          JSON-lines metrics dump\n"
        << "  --prom-out FILE             Prometheus text metrics\n"
        << "  --trace-out FILE            Chrome trace of serving\n"
        << "                              spans merged with the exec\n"
        << "                              timeline\n"
        << "  --sample-interval S         sample serving state every\n"
        << "                              S sim-seconds into time\n"
        << "                              series (serve only)\n"
        << "lint options:\n"
        << "  --model X | --all           lint one model or the zoo\n"
        << "  --json                      machine-readable findings\n"
        << "  --rules                     list the rule registry\n"
        << "  --no-physics --no-probes    structural checks only\n"
        << "  --no-memory                 skip the memory-liveness\n"
        << "                              pass (S013/P010/P011)\n"
        << "  --suppress RULE             drop one rule's findings\n"
        << "                              (repeatable)\n"
        << "analyze options:\n"
        << "  --memory                    the liveness analysis (peak\n"
        << "                              residency, reuse bounds,\n"
        << "                              max feasible batch)\n"
        << "  --model X | --all --json    as for lint\n";
    return 2;
}

hw::GpuSpec
parseGpu(const std::string& name)
{
    if (name == "a100")
        return hw::GpuSpec::a100_80gb();
    if (name == "v100")
        return hw::GpuSpec::v100_32gb();
    if (name == "h100")
        return hw::GpuSpec::h100_80gb();
    MMGEN_CHECK(false, "unknown GPU '" << name
                                       << "' (a100|v100|h100)");
}

graph::AttentionBackend
parseBackend(const std::string& name)
{
    if (name == "baseline")
        return graph::AttentionBackend::Baseline;
    if (name == "flash")
        return graph::AttentionBackend::Flash;
    if (name == "flash_decode")
        return graph::AttentionBackend::FlashDecode;
    MMGEN_CHECK(false, "unknown backend '"
                           << name
                           << "' (baseline|flash|flash_decode)");
}

models::ModelId
parseModel(const std::string& name)
{
    for (models::ModelId id : models::allModels()) {
        if (models::modelName(id) == name)
            return id;
    }
    MMGEN_CHECK(false, "unknown model '" << name
                                         << "'; see `mmgen list`");
}

double
parseDouble(const std::string& arg, const std::string& value)
{
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(value, &pos);
    } catch (const std::logic_error&) {
        pos = 0;
    }
    MMGEN_CHECK(!value.empty() && pos == value.size(),
                arg << " needs a number, got '" << value << "'");
    return v;
}

std::int64_t
parseInt(const std::string& arg, const std::string& value)
{
    std::size_t pos = 0;
    std::int64_t v = 0;
    try {
        v = static_cast<std::int64_t>(std::stoll(value, &pos));
    } catch (const std::logic_error&) {
        pos = 0;
    }
    MMGEN_CHECK(!value.empty() && pos == value.size(),
                arg << " needs an integer, got '" << value << "'");
    return v;
}

struct Options
{
    hw::GpuSpec gpu = hw::GpuSpec::a100_80gb();
    graph::AttentionBackend backend = graph::AttentionBackend::Flash;
    std::vector<std::string> positional;

    // profile/trace subcommand knobs
    std::string traceFile;
    exec::ScheduleOptions schedule;
    exec::LoweringOptions lowering;

    // lint subcommand knobs
    bool lintAll = false;
    bool lintJson = false;
    bool lintRules = false;
    bool lintPhysics = true;
    bool lintProbes = true;
    bool lintMemory = true;
    std::vector<std::string> suppressRules;

    // analyze subcommand knobs
    bool memoryAnalysis = false;

    // serve subcommand knobs
    serving::ServingConfig serving;
    serving::ResilienceConfig resilience;
    std::int64_t degradeThreshold = 0;
    double degradeStepsKept = 0.5;

    // serve cluster knobs (--replicas or --chaos selects the
    // cluster simulator)
    int replicas = 0;
    serving::RouterPolicy router = serving::RouterPolicy::LeastLoaded;
    std::string chaosName;
    double hedgeDelay = 0.0;
    double hedgeQuantile = 0.0;
    serving::CircuitBreakerPolicy breaker;
    std::int64_t ckptInterval = 0;
    double ckptCost = 0.0;
    serving::ProbeModel probe;
    int domainSize = 1;

    // telemetry knobs (profile / serve / stats)
    std::string metricsOut;
    std::string promOut;
    std::string traceOut;
    double sampleInterval = 0.0;

    bool
    wantsTelemetry() const
    {
        return !metricsOut.empty() || !promOut.empty() ||
               !traceOut.empty() || sampleInterval > 0.0;
    }
};

serving::RouterPolicy
parseRouter(const std::string& name)
{
    if (name == "round-robin")
        return serving::RouterPolicy::RoundRobin;
    if (name == "least-loaded")
        return serving::RouterPolicy::LeastLoaded;
    if (name == "domain-aware")
        return serving::RouterPolicy::FailureDomainAware;
    MMGEN_CHECK(false,
                "unknown router '"
                    << name
                    << "' (round-robin|least-loaded|domain-aware)");
}

Options
parseOptions(int argc, char** argv, int first)
{
    Options opts;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            MMGEN_CHECK(i + 1 < argc, arg << " needs a value");
            return argv[++i];
        };
        auto nextDouble = [&]() { return parseDouble(arg, next()); };
        auto nextInt = [&]() { return parseInt(arg, next()); };
        if (arg == "--gpu")
            opts.gpu = parseGpu(next());
        else if (arg == "--backend")
            opts.backend = parseBackend(next());
        else if (arg == "--jobs") {
            const std::int64_t jobs = nextInt();
            MMGEN_CHECK(jobs >= 1, "--jobs must be >= 1, got "
                                       << jobs);
            runtime::ThreadPool::setGlobalJobs(
                static_cast<int>(jobs));
        }
        else if (arg == "--rate")
            opts.serving.arrivalRate = nextDouble();
        else if (arg == "--gpus")
            opts.serving.numGpus = static_cast<int>(nextInt());
        else if (arg == "--batch")
            opts.serving.maxBatch = static_cast<int>(nextInt());
        else if (arg == "--horizon")
            opts.serving.horizonSeconds = nextDouble();
        else if (arg == "--seed")
            opts.serving.seed =
                static_cast<std::uint64_t>(nextInt());
        else if (arg == "--mtbf")
            opts.resilience.faults.failureMtbfSeconds = nextDouble();
        else if (arg == "--mttr")
            opts.resilience.faults.failureMttrSeconds = nextDouble();
        else if (arg == "--preempt-mtbf")
            opts.resilience.faults.preemptionMtbfSeconds =
                nextDouble();
        else if (arg == "--preempt-mean")
            opts.resilience.faults.preemptionMeanSeconds =
                nextDouble();
        else if (arg == "--straggler-frac")
            opts.resilience.faults.stragglerFraction = nextDouble();
        else if (arg == "--straggler-slowdown")
            opts.resilience.faults.stragglerSlowdown = nextDouble();
        else if (arg == "--deadline")
            opts.resilience.deadline.deadlineSeconds = nextDouble();
        else if (arg == "--timeout")
            opts.resilience.deadline.batchTimeoutSeconds =
                nextDouble();
        else if (arg == "--retries")
            opts.resilience.retry.maxRetries =
                static_cast<int>(nextInt());
        else if (arg == "--max-queue")
            opts.resilience.admission.maxQueueLength = nextInt();
        else if (arg == "--trace")
            opts.traceFile = next();
        else if (arg == "--streams")
            opts.schedule.streams = static_cast<int>(nextInt());
        else if (arg == "--launch-depth")
            opts.schedule.launchQueueDepth =
                static_cast<int>(nextInt());
        else if (arg == "--graph-launch")
            opts.schedule.graphLaunch = true;
        else if (arg == "--graph-replay-frac")
            opts.schedule.graphReplayOverheadFraction = nextDouble();
        else if (arg == "--stream-weights")
            opts.lowering.splitWeightStreams = true;
        else if (arg == "--model")
            opts.positional.push_back(next());
        else if (arg == "--all")
            opts.lintAll = true;
        else if (arg == "--json")
            opts.lintJson = true;
        else if (arg == "--rules")
            opts.lintRules = true;
        else if (arg == "--no-physics")
            opts.lintPhysics = false;
        else if (arg == "--no-probes")
            opts.lintProbes = false;
        else if (arg == "--no-memory")
            opts.lintMemory = false;
        else if (arg == "--suppress")
            opts.suppressRules.push_back(next());
        else if (arg == "--memory")
            opts.memoryAnalysis = true;
        else if (arg == "--degrade-threshold")
            opts.degradeThreshold = nextInt();
        else if (arg == "--degrade-steps")
            opts.degradeStepsKept = nextDouble();
        else if (arg == "--replicas")
            opts.replicas = static_cast<int>(nextInt());
        else if (arg == "--router")
            opts.router = parseRouter(next());
        else if (arg == "--chaos")
            opts.chaosName = next();
        else if (arg == "--hedge-delay")
            opts.hedgeDelay = nextDouble();
        else if (arg == "--hedge-quantile")
            opts.hedgeQuantile = nextDouble();
        else if (arg == "--breaker-threshold")
            opts.breaker.failureThreshold =
                static_cast<int>(nextInt());
        else if (arg == "--breaker-open")
            opts.breaker.openSeconds = nextDouble();
        else if (arg == "--ckpt-interval")
            opts.ckptInterval = nextInt();
        else if (arg == "--ckpt-cost")
            opts.ckptCost = nextDouble();
        else if (arg == "--probe-interval")
            opts.probe.intervalSeconds = nextDouble();
        else if (arg == "--domain-size")
            opts.domainSize = static_cast<int>(nextInt());
        else if (arg == "--metrics-out")
            opts.metricsOut = next();
        else if (arg == "--prom-out")
            opts.promOut = next();
        else if (arg == "--trace-out")
            opts.traceOut = next();
        else if (arg == "--sample-interval") {
            opts.sampleInterval = nextDouble();
            MMGEN_CHECK(opts.sampleInterval > 0.0,
                        "--sample-interval must be > 0, got "
                            << opts.sampleInterval);
        }
        else if (arg == "--domain-mtbf")
            opts.resilience.faults.domainMtbfSeconds = nextDouble();
        else if (arg == "--domain-mttr")
            opts.resilience.faults.domainMttrSeconds = nextDouble();
        else if (!arg.empty() && arg[0] == '-')
            MMGEN_CHECK(false, "unknown option " << arg);
        else
            opts.positional.push_back(arg);
    }
    return opts;
}

/** Write the requested metric / trace artifacts, logging each path. */
void
writeTelemetryOutputs(const Options& opts,
                      const telemetry::MetricsRegistry& registry,
                      const telemetry::TraceSink& sink)
{
    auto open = [](const std::string& path) {
        std::ofstream out(path);
        MMGEN_CHECK(static_cast<bool>(out), "cannot open " << path);
        return out;
    };
    if (!opts.metricsOut.empty()) {
        std::ofstream out = open(opts.metricsOut);
        telemetry::writeMetricsJsonLines(out, registry);
        std::cout << "wrote " << registry.size() << " metrics to "
                  << opts.metricsOut << "\n";
    }
    if (!opts.promOut.empty()) {
        std::ofstream out = open(opts.promOut);
        telemetry::writePrometheus(out, registry);
        std::cout << "wrote Prometheus metrics to " << opts.promOut
                  << "\n";
    }
    if (!opts.traceOut.empty()) {
        std::ofstream out = open(opts.traceOut);
        telemetry::writeChromeTrace(out, sink);
        std::cout << "wrote " << sink.events().size()
                  << " trace events to " << opts.traceOut << "\n";
    }
}

/**
 * Re-profile the pipeline with records kept and merge its exec
 * timeline into `sink`, so the serving trace and the kernel-level
 * schedule land in one Perfetto document.
 */
void
mergeExecTimeline(telemetry::TraceSink& sink,
                  const graph::Pipeline& pipeline, const Options& opts)
{
    profiler::ProfileOptions popts;
    popts.gpu = opts.gpu;
    popts.backend = opts.backend;
    popts.lowering = opts.lowering;
    popts.schedule = opts.schedule;
    popts.keepOpRecords = true;
    const profiler::ProfileResult res =
        profiler::Profiler(popts).profile(pipeline);
    telemetry::appendTimeline(sink, *res.plan, res.timeline);
}

int
cmdList()
{
    std::cout << "models:\n";
    for (models::ModelId id : models::allModels()) {
        const graph::Pipeline p = models::buildModel(id);
        std::cout << "  " << padRight(models::modelName(id), 18)
                  << padRight(graph::modelClassName(p.klass), 22)
                  << formatCount(double(p.totalParams()))
                  << " params\n";
    }
    std::cout << "gpus: a100 (A100-SXM4-80GB), v100 (V100-SXM2-32GB), "
                 "h100 (H100-SXM5-80GB)\n";
    std::cout << "backends: baseline, flash, flash_decode\n";
    return 0;
}

int
cmdProfile(const Options& opts)
{
    MMGEN_CHECK(opts.positional.size() == 1,
                "profile needs exactly one model name");
    const models::ModelId id = parseModel(opts.positional[0]);
    profiler::ProfileOptions popts;
    popts.gpu = opts.gpu;
    popts.backend = opts.backend;
    popts.lowering = opts.lowering;
    popts.schedule = opts.schedule;
    // The chrome-trace exporters read the retained plan + timeline.
    popts.keepOpRecords =
        !opts.traceFile.empty() || !opts.traceOut.empty();
    const profiler::ProfileResult res =
        profiler::Profiler(popts).profile(models::buildModel(id));
    std::cout << "GPU: " << opts.gpu.name << "\n\n";
    std::cout << core::profileSummary(res);
    if (!opts.traceFile.empty()) {
        std::ofstream out(opts.traceFile);
        MMGEN_CHECK(static_cast<bool>(out),
                    "cannot open " << opts.traceFile);
        profiler::writeChromeTrace(out, res);
        std::cout << "\nwrote timeline ("
                  << res.timeline.events.size() << " events) to "
                  << opts.traceFile << "\n";
    }
    if (opts.wantsTelemetry()) {
        telemetry::MetricsRegistry registry;
        telemetry::TraceSink sink;
        const telemetry::Labels labels{
            {"model", res.model},
            {"gpu", opts.gpu.name},
            {"backend",
             graph::attentionBackendName(opts.backend)}};
        registry.gauge("profile.total_seconds", labels)
            .set(res.totalSeconds);
        registry.gauge("profile.total_flops", labels)
            .set(res.totalFlops);
        registry.gauge("profile.total_hbm_bytes", labels)
            .set(res.totalHbmBytes);
        registry.gauge("profile.launch_overhead_seconds", labels)
            .set(res.launchOverheadSeconds);
        registry
            .counter("profile.kernel_launches", labels)
            .add(res.totalLaunches);
        runtime::publishRuntimeMetrics(registry);
        if (!opts.traceOut.empty())
            telemetry::appendTimeline(sink, *res.plan, res.timeline);
        writeTelemetryOutputs(opts, registry, sink);
    }
    return 0;
}

int
cmdHotspots(const Options& opts)
{
    MMGEN_CHECK(opts.positional.size() == 1,
                "hotspots needs exactly one model name");
    const models::ModelId id = parseModel(opts.positional[0]);
    profiler::ProfileOptions popts;
    popts.gpu = opts.gpu;
    popts.backend = opts.backend;
    popts.keepOpRecords = true;
    const profiler::ProfileResult res =
        profiler::Profiler(popts).profile(models::buildModel(id));
    std::cout << res.model << " on " << opts.gpu.name << " ["
              << graph::attentionBackendName(opts.backend)
              << "], total " << formatTime(res.totalSeconds) << "\n\n";
    std::cout << core::hotspotTable(res, 15).render();
    return 0;
}

int
cmdSuite(const Options& opts)
{
    core::CharacterizationSuite suite(opts.gpu);
    const std::vector<core::ModelRunResult> results =
        suite.runAll(models::allModels());
    std::cout << "GPU: " << opts.gpu.name << "\n\n";
    std::cout << core::flashSpeedupTable(results).render() << "\n";
    std::cout << core::attentionSpeedupTable(results).render() << "\n";
    std::cout << core::rooflineTable(results, opts.gpu).render();
    return 0;
}

int
cmdTaxonomy(const Options& opts)
{
    core::CharacterizationSuite suite(opts.gpu);
    const std::vector<core::ModelRunResult> results =
        suite.runAll(models::allModels());
    std::cout
        << core::taxonomyTable(core::buildTaxonomy(results)).render();
    return 0;
}

int
cmdFootprint(const Options& opts)
{
    TextTable table({"Model", "Weights", "KV cache",
                     "Peak activation", "Total", "Fits " +
                         opts.gpu.name});
    for (models::ModelId id : models::allModels()) {
        const graph::Pipeline p = models::buildModel(id);
        const analytics::InferenceFootprint fp =
            analytics::estimateFootprint(p, opts.backend);
        table.addRow({p.name, formatBytes(fp.weightBytes),
                      formatBytes(fp.kvCacheBytes),
                      formatBytes(fp.peakActivationBytes),
                      formatBytes(fp.totalBytes()),
                      fp.fits(opts.gpu) ? "yes" : "NO"});
    }
    std::cout << table.render();
    return 0;
}

int
cmdServeCluster(const Options& opts, const graph::Pipeline& pipeline,
                const serving::LatencyModel& latency,
                const serving::ResilienceConfig& res)
{
    serving::ClusterConfig cc;
    cc.arrivalRate = opts.serving.arrivalRate;
    cc.maxBatch = opts.serving.maxBatch;
    cc.horizonSeconds = opts.serving.horizonSeconds;
    cc.seed = opts.serving.seed;
    cc.resilience = res;
    cc.router = opts.router;
    cc.breaker = opts.breaker;
    cc.probe = opts.probe;

    const int numReplicas = std::max(1, opts.replicas);
    MMGEN_CHECK(opts.domainSize >= 1,
                "--domain-size must be >= 1, got "
                    << opts.domainSize);
    cc.replicas.clear();
    for (int r = 0; r < numReplicas; ++r)
        cc.replicas.push_back(serving::ReplicaSpec{
            latency, opts.serving.numGpus, r / opts.domainSize});

    if (opts.hedgeDelay > 0.0)
        cc.hedge.delaySeconds = opts.hedgeDelay;
    else if (opts.hedgeQuantile > 0.0)
        cc.hedge.delaySeconds = serving::hedgeDelayForQuantile(
            latency, cc.maxBatch, opts.hedgeQuantile);
    if (opts.ckptInterval > 0)
        cc.checkpoint = serving::checkpointFromPipeline(
            pipeline, opts.ckptInterval, opts.ckptCost);
    if (!opts.chaosName.empty())
        cc.chaos = serving::namedChaosScenario(
            opts.chaosName, numReplicas, cc.horizonSeconds);

    telemetry::MetricsRegistry registry;
    telemetry::TraceSink sink;
    telemetry::Telemetry tel;
    tel.metrics = &registry;
    tel.trace = &sink;
    tel.sampleIntervalSeconds = opts.sampleInterval;

    const serving::ClusterReport r = serving::simulateCluster(
        cc, opts.wantsTelemetry() ? &tel : nullptr);

    std::cout << pipeline.name << " on " << numReplicas
              << " replica(s) x " << opts.serving.numGpus << " "
              << opts.gpu.name << " ["
              << serving::routerPolicyName(cc.router)
              << " router, chaos: " << cc.chaos.name
              << "] (batch-1 latency "
              << formatTime(latency.baseSeconds) << ")\n\n";

    const serving::ServingReport& s = r.serving;
    TextTable table({"Metric", "Value"});
    table.addRow({"offered load", formatFixed(s.offeredLoad, 2)});
    table.addRow({"mean availability",
                  formatPercent(s.meanAvailability)});
    table.addRow({"arrived / completed",
                  std::to_string(s.arrived) + " / " +
                      std::to_string(s.completed)});
    table.addRow({"goodput", formatFixed(s.goodput, 2) + " req/s"});
    table.addRow({"p50 / p95 latency", formatTime(s.p50Latency) +
                                           " / " +
                                           formatTime(s.p95Latency)});
    table.addRow({"shed / expired / dropped",
                  std::to_string(s.shed) + " / " +
                      std::to_string(s.expired) + " / " +
                      std::to_string(s.dropped)});
    table.addRow({"retries", std::to_string(s.retries)});
    table.addRow({"hedges issued / won / cancelled",
                  std::to_string(s.hedgesIssued) + " / " +
                      std::to_string(s.hedgesWon) + " / " +
                      std::to_string(s.hedgesCancelled)});
    table.addRow({"hedge waste",
                  formatTime(s.hedgeWastedSeconds) + " GPU"});
    table.addRow({"breaker opens / closes",
                  std::to_string(s.breakerOpens) + " / " +
                      std::to_string(s.breakerCloses)});
    table.addRow({"checkpoints / resumes",
                  std::to_string(s.checkpointsTaken) + " / " +
                      std::to_string(s.resumes)});
    table.addRow({"checkpoint overhead",
                  formatTime(s.checkpointOverheadSeconds) + " GPU"});
    table.addRow({"wasted / restored GPU-seconds",
                  formatFixed(s.wastedGpuSeconds, 1) + " / " +
                      formatFixed(s.restoredGpuSeconds, 1)});
    table.addRow({"backlog", std::to_string(s.backlog)});
    std::cout << table.render() << "\n";

    TextTable reps({"Replica", "Domain", "Batches", "Completed",
                    "Aborted", "Breaker opens", "Busy",
                    "Availability"});
    for (std::size_t i = 0; i < r.replicas.size(); ++i) {
        const serving::ReplicaStats& rs = r.replicas[i];
        reps.addRow({std::to_string(i),
                     std::to_string(cc.replicas[i].domain),
                     std::to_string(rs.dispatchedBatches),
                     std::to_string(rs.completedRequests),
                     std::to_string(rs.abortedBatches),
                     std::to_string(rs.breakerOpens),
                     formatTime(rs.busySeconds),
                     formatPercent(rs.availability)});
    }
    std::cout << reps.render();

    if (opts.wantsTelemetry()) {
        if (!opts.traceOut.empty())
            mergeExecTimeline(sink, pipeline, opts);
        writeTelemetryOutputs(opts, registry, sink);
        if (opts.sampleInterval > 0.0) {
            telemetry::SeriesExpectations expect;
            expect.horizonSeconds = cc.horizonSeconds;
            expect.totalGpus = cc.totalGpus();
            expect.arrived = s.arrived;
            expect.shed = s.shed;
            expect.inHorizonCompleted =
                s.completed - s.drainCompleted;
            expect.retries = s.retries;
            expect.hedgesIssued = s.hedgesIssued;
            const verify::DiagnosticReport check =
                telemetry::checkSeriesConsistency(registry, expect);
            if (!check.diagnostics().empty())
                std::cout << "\n" << check.render();
            if (check.hasErrors())
                return 1;
        }
    }
    return 0;
}

int
cmdServe(const Options& opts)
{
    MMGEN_CHECK(opts.positional.size() == 1,
                "serve needs exactly one model name");
    const models::ModelId id = parseModel(opts.positional[0]);
    const graph::Pipeline pipeline = models::buildModel(id);
    const serving::LatencyModel latency =
        serving::profileLatencyModel(pipeline, opts.gpu);

    serving::ResilienceConfig res = opts.resilience;
    if (opts.degradeThreshold > 0) {
        // For Stable Diffusion the degraded variant is profiled for
        // real (fewer denoising steps); for other models the kept
        // fraction approximates the service scale, since generator
        // iterations dominate and scale linearly with steps.
        if (id == models::ModelId::StableDiffusion) {
            models::StableDiffusionConfig cheap;
            cheap.denoiseSteps = std::max<std::int64_t>(
                1, static_cast<std::int64_t>(
                       static_cast<double>(cheap.denoiseSteps) *
                       opts.degradeStepsKept));
            res.degradation = serving::degradationFromPipelines(
                pipeline, models::buildStableDiffusion(cheap),
                opts.gpu, 1.0 - opts.degradeStepsKept);
        } else {
            res.degradation.serviceScale = opts.degradeStepsKept;
            res.degradation.qualityCost =
                1.0 - opts.degradeStepsKept;
        }
        res.degradation.queueThreshold = opts.degradeThreshold;
    }

    MMGEN_CHECK(opts.replicas >= 0, "--replicas must be >= 0, got "
                                        << opts.replicas);
    if (opts.replicas > 0 || !opts.chaosName.empty())
        return cmdServeCluster(opts, pipeline, latency, res);

    telemetry::MetricsRegistry registry;
    telemetry::TraceSink sink;
    telemetry::Telemetry tel;
    tel.metrics = &registry;
    tel.trace = &sink;
    tel.sampleIntervalSeconds = opts.sampleInterval;

    const serving::ServingReport r = serving::simulateServing(
        opts.serving, latency, res,
        opts.wantsTelemetry() ? &tel : nullptr);

    std::cout << pipeline.name << " on " << opts.serving.numGpus
              << "x " << opts.gpu.name << " (batch-1 latency "
              << formatTime(latency.baseSeconds) << ")\n\n";
    TextTable table({"Metric", "Value"});
    table.addRow({"offered load", formatFixed(r.offeredLoad, 2)});
    table.addRow({"mean availability",
                  formatPercent(r.meanAvailability)});
    table.addRow({"arrived", std::to_string(r.arrived)});
    table.addRow({"completed", std::to_string(r.completed)});
    table.addRow({"throughput",
                  formatFixed(r.throughput, 2) + " req/s"});
    table.addRow({"goodput", formatFixed(r.goodput, 2) + " req/s"});
    table.addRow({"p50 / p95 latency", formatTime(r.p50Latency) +
                                           " / " +
                                           formatTime(r.p95Latency)});
    table.addRow({"mean batch", formatFixed(r.meanBatch, 2)});
    table.addRow({"GPU utilization",
                  formatPercent(r.gpuUtilization)});
    table.addRow({"deadline miss rate",
                  formatPercent(r.deadlineMissRate)});
    table.addRow({"retries", std::to_string(r.retries)});
    table.addRow({"shed / expired / dropped",
                  std::to_string(r.shed) + " / " +
                      std::to_string(r.expired) + " / " +
                      std::to_string(r.dropped)});
    table.addRow({"degraded", formatPercent(r.degradedFraction)});
    table.addRow({"backlog", std::to_string(r.backlog)});
    table.addRow({"drain completions",
                  std::to_string(r.drainCompleted)});
    table.addRow({"lost GPU-seconds",
                  formatFixed(r.lostGpuSeconds, 1)});
    std::cout << table.render();

    if (opts.wantsTelemetry()) {
        if (!opts.traceOut.empty())
            mergeExecTimeline(sink, pipeline, opts);
        writeTelemetryOutputs(opts, registry, sink);
        if (opts.sampleInterval > 0.0) {
            telemetry::SeriesExpectations expect;
            expect.horizonSeconds = opts.serving.horizonSeconds;
            expect.totalGpus = opts.serving.numGpus;
            expect.arrived = r.arrived;
            expect.shed = r.shed;
            expect.inHorizonCompleted =
                r.completed - r.drainCompleted;
            expect.retries = r.retries;
            const verify::DiagnosticReport check =
                telemetry::checkSeriesConsistency(registry, expect);
            if (!check.diagnostics().empty())
                std::cout << "\n" << check.render();
            if (check.hasErrors())
                return 1;
        }
    }
    return 0;
}

int
cmdStats(const Options& opts)
{
    MMGEN_CHECK(opts.positional.empty(),
                "stats takes no positional arguments");
    // Exercise the parallel harness + memo cache with a real
    // workload: the full both-backend suite, run twice so repeated
    // profiles show up as cache hits.
    core::CharacterizationSuite suite(opts.gpu);
    suite.runAll(models::allModels());
    suite.runAll(models::allModels());
    std::cout << "runtime counters after two suite runs on "
              << opts.gpu.name << ":\n\n"
              << runtime::runtimeStatsTable();
    if (opts.wantsTelemetry()) {
        telemetry::MetricsRegistry registry;
        telemetry::TraceSink sink;
        runtime::publishRuntimeMetrics(registry);
        writeTelemetryOutputs(opts, registry, sink);
    }
    return 0;
}

int
cmdAnalyze(const Options& opts)
{
    MMGEN_CHECK(opts.memoryAnalysis,
                "analyze needs --memory (the only analysis so far)");
    std::vector<models::ModelId> targets;
    if (opts.lintAll) {
        MMGEN_CHECK(opts.positional.empty(),
                    "--all and --model are mutually exclusive");
        targets = models::allModels();
    } else {
        MMGEN_CHECK(opts.positional.size() == 1,
                    "analyze needs --model <name> or --all");
        targets = {parseModel(opts.positional[0])};
    }

    bool all_feasible = true;
    json::Writer w(std::cout);
    if (opts.lintJson)
        w.beginArray();
    for (models::ModelId id : targets) {
        const graph::Pipeline pipeline = models::buildModel(id);
        const exec::FeasibilityReport rep =
            exec::analyzeFeasibility(pipeline, opts.gpu, opts.backend);
        const exec::MemoryProfile& mp = rep.profile;
        const bool feasible = rep.maxBatch >= 1;
        all_feasible = all_feasible && feasible;
        if (opts.lintJson) {
            w.beginObject()
                .field("model", pipeline.name)
                .field("gpu", opts.gpu.name)
                .field("backend",
                       graph::attentionBackendName(opts.backend))
                .field("weight_bytes", mp.weightBytes)
                .field("program_peak_bytes", mp.programPeakBytes)
                .field("scheduled_peak_bytes", mp.scheduledPeakBytes)
                .field("scheduled_peak_seconds",
                       mp.scheduledPeakSeconds)
                .field("no_reuse_bytes", mp.noReuseBytes)
                .field("reuse_savings_bytes", mp.reuseSavingsBytes())
                .field("dynamic_bytes", rep.dynamicBytes)
                .field("capacity_bytes", rep.capacityBytes)
                .field("max_feasible_batch", rep.maxBatch)
                .field("feasible", feasible);
            w.key("stage_residency").beginArray();
            for (const exec::StageResidency& sr : mp.stageResidency) {
                w.beginObject()
                    .field("stage", sr.stage)
                    .field("peak_bytes", sr.peakBytes)
                    .endObject();
            }
            w.endArray().endObject();
            continue;
        }
        std::cout << "== " << pipeline.name << " on " << opts.gpu.name
                  << " (" << graph::attentionBackendName(opts.backend)
                  << ") ==\n"
                  << "  weights          "
                  << formatBytes(mp.weightBytes) << "\n"
                  << "  program peak     "
                  << formatBytes(mp.programPeakBytes)
                  << "  (interval-reuse lower bound)\n"
                  << "  scheduled peak   "
                  << formatBytes(mp.scheduledPeakBytes) << "  at "
                  << formatTime(mp.scheduledPeakSeconds) << "\n"
                  << "  no-reuse bound   "
                  << formatBytes(mp.noReuseBytes)
                  << "  (reuse saves "
                  << formatBytes(mp.reuseSavingsBytes()) << ")\n"
                  << "  dynamic / req    "
                  << formatBytes(rep.dynamicBytes) << "\n"
                  << "  max batch        ";
        if (rep.maxBatch >= exec::kUnboundedBatch)
            std::cout << "unbounded";
        else
            std::cout << rep.maxBatch;
        std::cout << (feasible ? "" : "  (DOES NOT FIT)") << "\n";
        TextTable table({"Stage", "Peak residency"});
        for (const exec::StageResidency& sr : mp.stageResidency)
            table.addRow({sr.stage, formatBytes(sr.peakBytes)});
        std::cout << table.render() << "\n";
    }
    if (opts.lintJson) {
        w.endArray();
        std::cout << "\n";
    }
    return all_feasible ? 0 : 1;
}

int
cmdLint(const Options& opts)
{
    if (opts.lintRules) {
        TextTable table({"Rule", "Severity", "Family", "Invariant"});
        for (const verify::RuleInfo& r : verify::allRules())
            table.addRow({r.id, verify::severityName(r.severity),
                          r.family, r.summary});
        std::cout << table.render();
        return 0;
    }

    core::LintOptions lopts;
    lopts.gpu = opts.gpu;
    lopts.physics = opts.lintPhysics;
    lopts.probes = opts.lintProbes;
    lopts.memory = opts.lintMemory;
    lopts.suppressRules = opts.suppressRules;

    std::vector<models::ModelId> targets;
    if (opts.lintAll) {
        MMGEN_CHECK(opts.positional.empty(),
                    "--all and --model are mutually exclusive");
        targets = models::allModels();
    } else {
        MMGEN_CHECK(opts.positional.size() == 1,
                    "lint needs --model <name> or --all");
        targets = {parseModel(opts.positional[0])};
    }

    verify::DiagnosticReport report;
    for (models::ModelId id : targets) {
        if (!opts.lintJson)
            std::cout << "linting " << models::modelName(id) << "...\n";
        report.merge(core::lintModel(id, lopts));
    }
    if (opts.lintJson)
        std::cout << report.toJson() << "\n";
    else
        std::cout << report.render();
    return report.hasErrors() ? 1 : 0;
}

int
cmdTrace(const Options& opts)
{
    MMGEN_CHECK(opts.positional.size() == 2,
                "trace needs <model> <out.json>");
    const models::ModelId id = parseModel(opts.positional[0]);
    profiler::ProfileOptions popts;
    popts.gpu = opts.gpu;
    popts.backend = opts.backend;
    popts.lowering = opts.lowering;
    popts.schedule = opts.schedule;
    popts.keepOpRecords = true;
    const profiler::ProfileResult res =
        profiler::Profiler(popts).profile(models::buildModel(id));
    std::ofstream out(opts.positional[1]);
    MMGEN_CHECK(static_cast<bool>(out),
                "cannot open " << opts.positional[1]);
    profiler::writeChromeTrace(out, res);
    std::cout << "wrote " << res.timeline.events.size()
              << " timeline events to " << opts.positional[1] << "\n";
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        const Options opts = parseOptions(argc, argv, 2);
        if (cmd == "list")
            return cmdList();
        if (cmd == "profile")
            return cmdProfile(opts);
        if (cmd == "hotspots")
            return cmdHotspots(opts);
        if (cmd == "suite")
            return cmdSuite(opts);
        if (cmd == "taxonomy")
            return cmdTaxonomy(opts);
        if (cmd == "footprint")
            return cmdFootprint(opts);
        if (cmd == "trace")
            return cmdTrace(opts);
        if (cmd == "serve")
            return cmdServe(opts);
        if (cmd == "stats")
            return cmdStats(opts);
        if (cmd == "lint")
            return cmdLint(opts);
        if (cmd == "analyze")
            return cmdAnalyze(opts);
        std::cerr << "unknown command '" << cmd << "'\n";
        return usage();
    } catch (const mmgen::FatalError& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    } catch (const mmgen::PanicError& e) {
        std::cerr << "internal error: " << e.what() << "\n";
        return 70;
    }
}
